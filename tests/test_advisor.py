"""Tests for the padding advisor."""

import pytest

from repro import profile
from repro.core.advisor import PaddingAdvice, advise, infer_stride, thread_extents
from repro.core.assessment import Assessment
from repro.core.detection import ObjectProfile, SharingKind
from repro.core.report import ObjectReport
from repro.pmu.sampler import PMUConfig
from repro.workloads.parsec import StreamCluster
from repro.workloads.phoenix import LinearRegression


def synthetic_report(word_tids, label="obj.c:1"):
    """Build a report whose word_summary maps rel_word -> tids."""
    profile_ = ObjectProfile(key=("heap", 1), kind="heap", start=0,
                             end=1024, size=1024, label=label)
    for rel_word, tids in word_tids.items():
        profile_.word_summary[rel_word] = {
            "tids": list(tids), "reads": 1, "writes": 1,
            "shared": len(tids) > 1,
        }
    assessment = Assessment(improvement=2.0, real_runtime=100,
                            predicted_runtime=50.0, aver_nofs_cycles=3.0)
    return ObjectReport(profile=profile_, assessment=assessment,
                        kind=SharingKind.FALSE_SHARING)


class TestExtentsAndStride:
    def test_extents_cover_thread_words(self):
        report = synthetic_report({0: [1], 2: [1], 4: [2], 6: [2]})
        extents = {e.tid: e for e in thread_extents(report)}
        assert extents[1].start == 0 and extents[1].end == 12
        assert extents[2].start == 16 and extents[2].end == 28

    def test_extents_sorted_by_start(self):
        report = synthetic_report({10: [3], 0: [1], 5: [2]})
        assert [e.tid for e in thread_extents(report)] == [1, 2, 3]

    def test_stride_median_of_gaps(self):
        report = synthetic_report({0: [1], 4: [2], 8: [3], 12: [4]})
        extents = thread_extents(report)
        assert infer_stride(extents) == 16

    def test_stride_none_for_single_thread(self):
        report = synthetic_report({0: [1], 1: [1]})
        assert infer_stride(thread_extents(report)) is None


class TestAdvice:
    def test_16_byte_elements_recommend_full_line(self):
        # 4 threads, 16-byte elements -> pad to 64.
        words = {}
        for i in range(4):
            for w in range(4):
                words[i * 4 + w] = [i + 1]
        advice = advise(synthetic_report(words))
        assert advice.inferred_stride == 16
        assert advice.recommended_stride == 64
        assert advice.extra_bytes_per_element == 48
        assert not advice.already_line_aligned

    def test_wide_elements_round_up_to_line_multiple(self):
        # 96-byte elements (24 words) -> recommend 128.
        words = {}
        for i in range(3):
            for w in range(24):
                words[i * 24 + w] = [i + 1]
        advice = advise(synthetic_report(words))
        assert advice.recommended_stride == 128

    def test_aligned_layout_flagged(self):
        # 64-byte stride, each thread within its line: nothing to fix.
        words = {0: [1], 1: [1], 16: [2], 17: [2]}
        advice = advise(synthetic_report(words))
        assert advice.already_line_aligned
        assert "will not help" in advice.render()

    def test_no_word_data_returns_none(self):
        assert advise(synthetic_report({})) is None

    def test_render_mentions_padding(self):
        words = {0: [1], 8: [2]}
        advice = advise(synthetic_report(words))
        assert "char pad[" in advice.render()


class TestOnRealReports:
    def test_linear_regression_advice_matches_paper_fix(self):
        # The paper pads lreg_args (56 bytes) to a full 64-byte line.
        _, report = profile(LinearRegression(num_threads=16),
                            pmu_config=PMUConfig(period=64))
        advice = advise(report.best())
        assert advice.inferred_stride == 56
        assert advice.recommended_stride == 64

    def test_streamcluster_advice_matches_paper_fix(self):
        # 32-byte slots -> pad to 64 (the fix evaluated in Table 1).
        _, report = profile(StreamCluster(num_threads=16),
                            pmu_config=PMUConfig(period=32))
        instances = report.false_sharing_instances()
        assert instances
        advice = advise(instances[0])
        assert advice.inferred_stride == 32
        assert advice.recommended_stride == 64
