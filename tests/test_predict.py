"""Tests for the analytical fast-forward mode (:mod:`repro.predict`).

Covers: profile extraction (prefix and trace sources), the analytical
model's accuracy against ground truth, thread/scale extrapolation,
sampled-burst mode (including bit-compatibility with simulate mode and
sanitizer pass-through), mode routing and error combos in
``run_workload``/``build_configs``/the CLI, predicted-outcome caching,
and the cross-validation harness plumbing.
"""

import argparse
import json

import pytest

from repro.cli import main as cli_main
from repro.config import build_configs
from repro.errors import ConfigError
from repro.predict import (
    PredictConfig,
    burst_seed,
    extract_profile,
    predict_from_profiles,
    predict_outcome,
    profile_from_trace,
    run_bursts,
    sampled_outcome,
)
from repro.predict.validate import (
    SMOKE_SET,
    relative_error,
    run_validation,
    summarize,
    validate_workload,
)
from repro.run import RunOutcome, RunSummary, run_workload
from repro.sim.params import MachineConfig
from repro.trace.recorder import TraceRecorder
from repro.trace.storage import load_trace, save_trace
from repro.workloads.base import Workload, get_workload
from repro.workloads.micro import ArrayIncrement
from repro.workloads.synthetic import SyntheticSharing

SEED = 11


class TestWorkloadClone:
    def test_clone_preserves_ctor_args(self):
        wl = SyntheticSharing(num_threads=4, scale=1.5, seed=7,
                              pattern="true")
        dup = wl.clone()
        assert (dup.num_threads, dup.scale, dup.seed, dup.pattern) == \
            (4, 1.5, 7, "true")
        assert dup is not wl

    def test_clone_overrides_selectively(self):
        wl = ArrayIncrement(num_threads=8, scale=2.0)
        dup = wl.clone(scale=0.25)
        assert dup.scale == 0.25
        assert dup.num_threads == 8
        assert dup.total_elements == wl.total_elements
        # Derived values recompute from the new scale.
        assert dup.inner_iters < wl.inner_iters

    def test_clone_unknown_override_rejected(self):
        with pytest.raises(ConfigError, match="unknown override"):
            SyntheticSharing().clone(bogus=1)

    def test_clone_produces_identical_run(self):
        wl = SyntheticSharing(scale=0.3)
        run_workload(wl, jitter_seed=SEED)  # consume the original's rng
        a = run_workload(wl.clone(), jitter_seed=SEED)
        b = run_workload(SyntheticSharing(scale=0.3), jitter_seed=SEED)
        assert a.result.runtime == b.result.runtime
        assert a.invalidations == b.invalidations

    def test_unclonable_workload_raises_config_error(self):
        class Hidden(Workload):
            name = "hidden-test"

            def __init__(self, fn):
                super().__init__()
                self._fn = fn  # ctor arg not recoverable by name

            def main(self, api):
                yield

        with pytest.raises(ConfigError, match="cannot be cloned"):
            Hidden(fn=lambda: None).clone()


class TestProfileExtraction:
    def test_profile_totals_match_run(self):
        wl = SyntheticSharing(num_threads=4, scale=0.3)
        truth = run_workload(SyntheticSharing(num_threads=4, scale=0.3),
                             jitter_seed=SEED)
        profile = extract_profile(wl, jitter_seed=SEED)
        assert profile.runtime == truth.result.runtime
        assert profile.invalidations == truth.invalidations
        assert profile.total_accesses == truth.result.total_accesses
        assert profile.source == "prefix"

    def test_per_line_ground_truth_invalidations(self):
        profile = extract_profile(SyntheticSharing(num_threads=4, scale=0.3),
                                  jitter_seed=SEED)
        assert sum(lp.invalidations for lp in profile.lines.values()) == \
            profile.invalidations
        contended = profile.contended_lines()
        assert contended  # the false pattern contends one line
        lp = next(iter(contended.values()))
        assert len(lp.writers) == 4
        assert lp.writer_switches > 0
        assert 0.0 < lp.alternation_rate <= 1.0

    def test_reuse_histogram_and_serial_latencies(self):
        profile = extract_profile(SyntheticSharing(num_threads=2, scale=0.2),
                                  jitter_seed=SEED)
        assert sum(profile.reuse_histogram.values()) > 0
        assert all(bucket >= 1 for bucket in profile.reuse_histogram)
        # Synthetic has no serial-phase accesses; histogram merges serially.
        assert profile.serial_latencies == []
        merged = extract_profile(get_workload("histogram")(num_threads=2,
                                                           scale=0.2),
                                 jitter_seed=SEED)
        assert merged.serial_latencies

    def test_detector_sees_every_access(self):
        profile = extract_profile(SyntheticSharing(num_threads=4, scale=0.2),
                                  jitter_seed=SEED)
        assert profile.detector.samples_seen == profile.total_accesses

    def test_extraction_forces_simulate_mode(self):
        # A predict-mode config must not recurse into prediction.
        profile = extract_profile(
            SyntheticSharing(num_threads=2, scale=0.2),
            machine_config=MachineConfig(mode="predict"), jitter_seed=SEED)
        assert profile.total_accesses > 0


class TestPredictConfig:
    def test_prefix_scales_clamp(self):
        cfg = PredictConfig()
        p1, p2 = cfg.prefix_scales(100.0)
        assert p1 == cfg.max_prefix_scale
        assert p2 == 2 * cfg.max_prefix_scale
        p1, p2 = cfg.prefix_scales(0.1)
        assert p1 == pytest.approx(0.05)
        assert p2 == pytest.approx(0.1)

    def test_tiny_target_single_point(self):
        p1, p2 = PredictConfig().prefix_scales(0.05)
        assert p1 == 0.05
        assert p2 is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            PredictConfig(prefix_fraction=0.0)
        with pytest.raises(ConfigError):
            PredictConfig(bursts=0)
        with pytest.raises(ConfigError):
            PredictConfig(max_prefix_scale=0.01)


class TestAnalyticalModel:
    def test_invalidation_accuracy_on_contended_workload(self):
        truth = run_workload(SyntheticSharing(num_threads=8, scale=2.0),
                             jitter_seed=SEED)
        pred = run_workload(SyntheticSharing(num_threads=8, scale=2.0),
                            machine_config=MachineConfig(mode="predict"),
                            jitter_seed=SEED)
        err = relative_error(pred.invalidations, truth.invalidations)
        assert err <= 0.10
        rt_err = abs(pred.runtime - truth.runtime) / truth.runtime
        assert rt_err <= 0.10

    def test_negative_control_stays_negative(self):
        pred = run_workload(
            SyntheticSharing(num_threads=8, scale=2.0, pattern="private"),
            machine_config=MachineConfig(mode="predict"),
            jitter_seed=SEED, with_cheetah=True)
        assert not pred.report.significant

    def test_verdict_and_report_shape(self):
        truth = run_workload(SyntheticSharing(num_threads=8, scale=2.0),
                             jitter_seed=SEED, with_cheetah=True)
        pred = run_workload(SyntheticSharing(num_threads=8, scale=2.0),
                            machine_config=MachineConfig(mode="predict"),
                            jitter_seed=SEED, with_cheetah=True)
        assert bool(pred.report.significant) == bool(truth.report.significant)
        assert pred.report.best().profile.label == \
            truth.report.best().profile.label
        assert pred.report.render()  # Figure 5 format renders

    def test_deterministic(self):
        outcomes = [
            run_workload(SyntheticSharing(num_threads=8, scale=2.0),
                         machine_config=MachineConfig(mode="predict"),
                         jitter_seed=SEED, with_cheetah=True).to_dict()
            for _ in range(2)
        ]
        assert outcomes[0] == outcomes[1]

    def test_metadata_tags(self):
        pred = run_workload(SyntheticSharing(num_threads=4, scale=1.0),
                            machine_config=MachineConfig(mode="predict"),
                            jitter_seed=SEED)
        meta = pred.result.metadata
        assert meta["predicted"] is True
        assert meta["mode"] == "predict"
        assert meta["kernel"] == "predict"
        assert meta["profile"]["calibration_points"] == 2
        assert pred.predicted
        assert pred.fresh_prediction
        assert not pred.from_cache

    def test_thread_extrapolation_scales_invalidations(self):
        # Above max_profile_threads (64) the model profiles at 64 threads
        # and extrapolates under the weak-scaling assumption.
        base = predict_outcome(SyntheticSharing(num_threads=64, scale=2.0),
                               jitter_seed=SEED)
        wide = predict_outcome(SyntheticSharing(num_threads=512, scale=2.0),
                               jitter_seed=SEED)
        assert base.result.metadata["target"]["thread_factor"] == \
            pytest.approx(1.0)
        assert wide.result.metadata["target"]["thread_factor"] == \
            pytest.approx(8.0)
        # Weak scaling: 8x the threads -> ~8x the invalidations.
        ratio = wide.invalidations / base.invalidations
        assert 6.0 <= ratio <= 10.0
        # Worker summaries exist for every target thread.
        assert len(wide.result.threads) == 513
        # Spawn/join costs for the extra threads land on main's clock.
        assert wide.runtime > base.runtime

    def test_huge_run_predicts_fast(self):
        # The acceptance scenario: 1024 threads, >=1e8 accesses, seconds.
        import time
        config = MachineConfig(num_cores=1024, mode="predict")
        start = time.perf_counter()
        pred = run_workload(SyntheticSharing(num_threads=1024, scale=65.0),
                            machine_config=config, jitter_seed=SEED,
                            with_cheetah=True)
        elapsed = time.perf_counter() - start
        assert pred.result.total_accesses >= 100_000_000
        assert elapsed < 30.0  # seconds, with huge CI margin
        assert pred.report is not None
        assert pred.result.metadata["predicted_pmu"]["samples_fired"] > 0

    def test_predict_rejects_check(self):
        with pytest.raises(ConfigError, match="sanitizer"):
            run_workload(SyntheticSharing(scale=0.2),
                         machine_config=MachineConfig(mode="predict"),
                         check=True)

    def test_analytical_modes_reject_observer(self):
        for mode in ("predict", "sampled"):
            with pytest.raises(ConfigError, match="observer"):
                run_workload(SyntheticSharing(scale=0.2),
                             machine_config=MachineConfig(mode=mode),
                             observer=TraceRecorder())

    def test_outcome_roundtrips_through_schema(self):
        pred = run_workload(SyntheticSharing(num_threads=4, scale=1.0),
                            machine_config=MachineConfig(mode="predict"),
                            jitter_seed=SEED, with_cheetah=True)
        data = pred.to_dict()
        back = RunOutcome.from_dict(data)
        assert back.predicted
        assert back.from_cache  # rehydrated predictions read as cached
        assert back.invalidations == pred.invalidations
        assert back.to_dict() == data


class TestSampledMode:
    def test_burst_zero_bit_compatible_with_simulate(self):
        wl = SyntheticSharing(num_threads=4, scale=1.0)
        cfg = PredictConfig(bursts=1)
        burst_scale = cfg.burst_scale(wl.scale)
        bursts = run_bursts(wl, burst_scale, 1,
                            machine_config=MachineConfig(),
                            jitter_seed=SEED)
        direct = run_workload(SyntheticSharing(num_threads=4,
                                               scale=burst_scale),
                              jitter_seed=SEED)
        assert bursts[0].result.runtime == direct.result.runtime
        assert bursts[0].invalidations == direct.invalidations
        assert bursts[0].result.total_accesses == direct.result.total_accesses

    def test_sampled_outcome_extrapolates_with_ci(self):
        truth = run_workload(SyntheticSharing(num_threads=8, scale=2.0),
                             jitter_seed=SEED)
        pred = run_workload(SyntheticSharing(num_threads=8, scale=2.0),
                            machine_config=MachineConfig(mode="sampled"),
                            jitter_seed=SEED)
        meta = pred.result.metadata["sampled"]
        assert meta["bursts"] == 3
        assert len(meta["seeds"]) == 3
        assert meta["seeds"][0] == SEED  # burst 0 uses the seed verbatim
        assert len(set(meta["seeds"])) == 3
        assert meta["ci95"]["runtime"] >= 0.0
        err = relative_error(pred.invalidations, truth.invalidations)
        assert err <= 0.15
        assert pred.predicted

    def test_sampled_mode_supports_sanitizer(self):
        pred = run_workload(SyntheticSharing(num_threads=2, scale=0.5),
                            machine_config=MachineConfig(mode="sampled"),
                            jitter_seed=SEED, check=True)
        assert pred.result.metadata["sampled"]["sanitized"] is True

    def test_burst_seed_deterministic_and_distinct(self):
        seeds = [burst_seed(SEED, i) for i in range(4)]
        assert seeds[0] == SEED
        assert len(set(seeds)) == 4
        assert seeds == [burst_seed(SEED, i) for i in range(4)]


class TestTraceAsProfileSource:
    """Satellite: end-to-end trace round trip feeding prediction."""

    def _record(self, workload, jitter_seed=SEED):
        recorder = TraceRecorder()
        out = run_workload(workload, jitter_seed=jitter_seed,
                           observer=recorder)
        return out, recorder

    def test_roundtrip_plain_and_gzip_then_predict(self, tmp_path):
        out, recorder = self._record(SyntheticSharing(num_threads=4,
                                                      scale=0.5))
        records = list(recorder)
        plain = tmp_path / "run.trace"
        gz = tmp_path / "run.trace.gz"
        save_trace(records, plain)
        save_trace(records, gz)
        loaded_plain = list(load_trace(plain))
        loaded_gz = list(load_trace(gz))
        assert loaded_plain == records
        assert loaded_gz == records

        profile = profile_from_trace(loaded_gz, threads=4, scale=0.5)
        assert profile.source == "trace"
        assert profile.total_accesses == out.result.total_accesses
        # Table-estimated invalidations track the ground truth closely on
        # an alternating-writer pattern.
        assert profile.invalidations == pytest.approx(
            out.invalidations, rel=0.25)

        pred = predict_from_profiles(
            profile, target_threads=4, target_scale=2.0,
            with_cheetah=True)
        assert pred.predicted
        assert pred.invalidations > profile.invalidations
        assert pred.report is not None
        # The contended region shows up even without allocator context.
        assert pred.report.significant

    def test_trace_profile_matches_prefix_profile_lines(self):
        wl = SyntheticSharing(num_threads=4, scale=0.4)
        out, recorder = self._record(SyntheticSharing(num_threads=4,
                                                      scale=0.4))
        trace_profile = profile_from_trace(list(recorder), threads=4,
                                           scale=0.4)
        prefix_profile = extract_profile(wl, jitter_seed=SEED)
        assert set(trace_profile.lines) == set(prefix_profile.lines)
        for line, lp in trace_profile.lines.items():
            assert lp.accesses == prefix_profile.lines[line].accesses
            assert lp.writes == prefix_profile.lines[line].writes

    def test_replay_recording_is_deterministic(self):
        _, first = self._record(SyntheticSharing(num_threads=2, scale=0.3))
        _, second = self._record(SyntheticSharing(num_threads=2, scale=0.3))
        assert list(first) == list(second)


class TestModeRoutingAndCaching:
    def test_mode_enters_cache_key(self):
        sim = MachineConfig()
        pred = MachineConfig(mode="predict")
        assert sim.to_dict()["mode"] == "simulate"
        assert pred.to_dict()["mode"] == "predict"
        assert sim.to_dict() != pred.to_dict()

    def test_session_caches_prediction_tagged(self, tmp_path):
        from repro.api import Session
        from repro.service import RunService, using_service
        service = RunService(cache_dir=str(tmp_path), enabled=True)
        with using_service(service):
            first = Session("synthetic", threads=4, scale=1.0,
                            jitter_seed=SEED,
                            machine=MachineConfig(mode="predict")).profile()
            second = Session("synthetic", threads=4, scale=1.0,
                             jitter_seed=SEED,
                             machine=MachineConfig(mode="predict")).profile()
            simulated = Session("synthetic", threads=4, scale=1.0,
                                jitter_seed=SEED).profile()
        assert first.predicted and not first.from_cache
        assert second.predicted and second.from_cache
        assert second.invalidations == first.invalidations
        # The simulate-mode run must not be served from the predict entry.
        assert not simulated.predicted
        assert simulated.invalidations != 0

    def test_default_mode_unchanged(self):
        out = run_workload(SyntheticSharing(num_threads=2, scale=0.3),
                           jitter_seed=SEED)
        assert not out.predicted
        assert "predicted" not in out.result.metadata


class TestBuildConfigsModeValidation:
    def _args(self, **kw):
        ns = argparse.Namespace()
        defaults = dict(threads=None, scale=1.0, fixed=False, seed=SEED,
                        line_size=None, cores=None, kernel=None, mode=None,
                        check=False, command="run")
        defaults.update(kw)
        for key, value in defaults.items():
            setattr(ns, key, value)
        return ns

    def test_mode_maps_to_machine_config(self):
        configs = build_configs(self._args(mode="predict"))
        assert configs.machine.mode == "predict"
        assert build_configs(self._args()).machine is None

    def test_predict_with_check_rejected(self):
        with pytest.raises(ConfigError, match="--mode predict.*--check"):
            build_configs(self._args(mode="predict", check=True))

    def test_sampled_with_check_allowed(self):
        configs = build_configs(self._args(mode="sampled", check=True))
        assert configs.check is True
        assert configs.machine.mode == "sampled"

    def test_mode_with_trace_rejected(self):
        with pytest.raises(ConfigError, match="--trace"):
            build_configs(self._args(mode="predict", trace="out.json"))

    def test_mode_with_metrics_command_rejected(self):
        with pytest.raises(ConfigError, match="'metrics' command"):
            build_configs(self._args(mode="sampled", command="metrics"))

    def test_mode_simulate_combines_freely(self):
        configs = build_configs(self._args(mode="simulate", check=True,
                                           trace="out.json"))
        assert configs.machine.mode == "simulate"


class TestPredictCLI:
    def test_predict_command_runs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = cli_main(["predict", "synthetic", "--threads", "4",
                         "--scale", "1", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["predicted"] is True
        assert data["mode"] == "predict"
        assert data["invalidations"] > 0
        assert data["profile"]["calibration_points"] == 2

    def test_predict_command_requires_workload(self):
        with pytest.raises(ConfigError, match="workload"):
            cli_main(["predict"])

    def test_run_mode_check_conflict_at_cli(self):
        with pytest.raises(ConfigError, match="--check"):
            cli_main(["run", "synthetic", "--mode", "predict", "--check",
                      "--no-cache"])

    def test_trace_command_rejects_predict_mode(self):
        with pytest.raises(ConfigError, match="trace"):
            cli_main(["trace", "synthetic", "--mode", "predict"])

    def test_sampled_check_via_cli(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = cli_main(["predict", "synthetic", "--threads", "2",
                         "--scale", "0.5", "--mode", "sampled", "--check",
                         "--json", "--no-cache"])
        out = json.loads(capsys.readouterr().out)
        assert out["sampled"]["sanitized"] is True
        assert code in (0, 1)  # verdict-driven exit


class TestValidationHarness:
    def test_relative_error_negligible_rule(self):
        assert relative_error(0, 10) == 0.0
        assert relative_error(500, 10) == 1.0
        assert relative_error(110, 100) == pytest.approx(0.1)

    def test_smoke_set_passes(self):
        results = run_validation(SMOKE_SET[:2], seed=SEED)
        summary = summarize(results)
        assert summary["passed"], summary

    def test_single_workload_result_shape(self):
        result = validate_workload("synthetic", 4, 1.0, seed=SEED)
        data = result.to_dict()
        assert data["verdict_agrees"]
        assert 0.0 <= data["invalidation_error"] <= 1.0
        assert data["predict_seconds"] > 0

    def test_cli_validate_smoke(self, capsys):
        code = cli_main(["predict", "--validate", "--smoke", "--json",
                         "--workloads", "synthetic,array_increment"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["summary"]["passed"]
        assert len(data["results"]) == 2
