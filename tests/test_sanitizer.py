"""Tests for the coherence sanitizer (repro.sim.check.sanitizer).

Three properties: a clean machine passes unperturbed (identical outputs,
every access shadowed); a corrupted machine is caught with a structured
ValidationError; the planted-mutation self-test proves the net can catch
a realistic fast-path bug, not just gross corruption.
"""

from types import SimpleNamespace

import pytest

from repro.errors import SimulationError, ValidationError
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.check.mutation import BrokenFastPathMachine, run_mutation_selftest
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig


def machine(check=False, **kwargs):
    kwargs.setdefault("timing_jitter", 2)
    kwargs.setdefault("jitter_seed", 99)
    return Machine(MachineConfig(num_cores=4), check=check, **kwargs)


def contended_trace(m, rounds=50):
    """Two cores ping-ponging writes on one line, plus a disjoint reader."""
    out = []
    for i in range(rounds):
        out.append(m.access_tuple(0, 0x1000, True, now=i * 10))
        out.append(m.access_tuple(1, 0x1004, True, now=i * 10 + 3))
        out.append(m.access_tuple(2, 0x8000 + 64 * i, False, now=i * 10 + 5))
    return out


class TestCleanMachinePasses:
    def test_sanitized_outputs_identical_to_plain(self):
        plain = contended_trace(machine(check=False))
        checked = contended_trace(machine(check=True))
        assert plain == checked

    def test_every_access_is_shadowed(self):
        m = machine(check=True)
        contended_trace(m, rounds=20)
        assert m.sanitizer.accesses_checked == 60

    def test_check_off_installs_no_sanitizer(self):
        assert machine(check=False).sanitizer is None

    def test_prefetched_accepted_as_latency_remap(self):
        m = machine(check=True)
        # A forward streaming sweep trains the prefetcher; the machine
        # remaps predicted COLD fetches to PREFETCHED, which the
        # sanitizer must accept (it is not a coherence transition).
        for i in range(32):
            m.access_tuple(0, 0x4000 + 64 * i, False, now=i * 5)
        assert m.prefetch_hits > 0
        assert m.sanitizer.accesses_checked == 32


class TestCorruptionCaught:
    def test_foreign_holder_injected_into_directory(self):
        m = machine(check=True)
        m.access_tuple(0, 0x1000, True, now=0)
        state = m.directory.state_of(0x1000 >> m._line_shift)
        state.holders.add(3)  # core 3 never touched the line
        with pytest.raises(ValidationError) as exc:
            m.access_tuple(0, 0x1000, False, now=10)
        assert exc.value.invariant in ("holders-mismatch", "single-writer")

    def test_invalidation_counter_tampering(self):
        m = machine(check=True)
        m.access_tuple(0, 0x1000, True, now=0)
        m.access_tuple(1, 0x1000, True, now=5)
        line = 0x1000 >> m._line_shift
        m.directory.state_of(line).invalidations += 7
        with pytest.raises(ValidationError) as exc:
            m.access_tuple(0, 0x1000, True, now=10)
        assert exc.value.invariant == "invalidation-count"

    def test_jitter_stream_divergence(self):
        m = machine(check=True)
        m.access_tuple(0, 0x1000, True, now=0)
        m._jitter_state ^= 0xDEAD  # out-of-band draw / corruption
        with pytest.raises(ValidationError) as exc:
            m.access_tuple(0, 0x1000, True, now=5)
        assert exc.value.invariant == "jitter-stream"

    def test_validation_error_is_structured(self):
        m = machine(check=True)
        contended_trace(m, rounds=5)
        line = 0x1000 >> m._line_shift
        m.directory.state_of(line).invalidations += 1
        with pytest.raises(ValidationError) as exc:
            m.access_tuple(0, 0x1000, True, now=10**6)
        error = exc.value
        assert error.invariant == "invalidation-count"
        assert isinstance(error, SimulationError)
        assert error.access["addr"] == 0x1000
        assert error.expected != error.actual
        assert error.trace, "trace of preceding accesses must be attached"
        assert "[invalidation-count]" in str(error)


class TestEngineLevelChecks:
    def test_clock_monotonicity(self):
        m = machine(check=True)
        thread = SimpleNamespace(tid=1, clock=100)
        m.sanitizer.note_quantum(thread)
        thread.clock = 250
        m.sanitizer.note_quantum(thread)
        thread.clock = 200
        with pytest.raises(ValidationError) as exc:
            m.sanitizer.note_quantum(thread)
        assert exc.value.invariant == "clock-monotonicity"

    def test_pmu_countdown_must_stay_positive(self):
        m = machine(check=True)
        pmu = PMU(PMUConfig(period=32))
        pmu.on_thread_start(0)
        m.sanitizer.check_pmu(pmu)  # freshly armed: fine
        pmu._countdown[0] = 0
        with pytest.raises(ValidationError) as exc:
            m.sanitizer.check_pmu(pmu)
        assert exc.value.invariant == "pmu-countdown"

    def test_pmu_overhead_conservation(self):
        m = machine(check=True)
        pmu = PMU(PMUConfig(period=4))
        pmu.on_thread_start(0)
        for i in range(40):
            pmu.on_access(0, 0, 0x2000 + 4 * i, False, 10, 4, i * 10)
        pmu.on_work(0, 100)
        m.sanitizer.check_pmu(pmu)
        pmu.overhead_by_tid[0] += 1  # one cycle leaks
        with pytest.raises(ValidationError) as exc:
            m.sanitizer.check_pmu(pmu)
        assert exc.value.invariant == "pmu-overhead-conservation"


class TestMutationSelfTest:
    def test_planted_fast_path_bug_is_caught(self):
        caught = run_mutation_selftest()
        assert isinstance(caught, ValidationError)
        # The broken predicate claims HIT for a non-owner holder, which
        # skips the silent-upgrade transition.
        assert caught.invariant in ("outcome-mismatch", "dirty-owner-mismatch",
                                    "holders-mismatch", "invalidation-count")

    def test_broken_machine_runs_silently_without_sanitizer(self):
        # The point of the self-test: the same bug produces a plausible,
        # wrong simulation when nothing shadows it.
        from repro.heap.allocator import CheetahAllocator
        from repro.sim.check.mutation import _false_sharing_program
        from repro.sim.engine import Engine

        config = MachineConfig(num_cores=4)
        broken = BrokenFastPathMachine(config, timing_jitter=0)
        honest = Machine(config, timing_jitter=0)
        results = []
        for m in (broken, honest):
            engine = Engine(config=config, machine=m,
                            allocator=CheetahAllocator(
                                line_size=config.cache_line_size))
            results.append(engine.run(_false_sharing_program).runtime)
        assert results[0] != results[1]
