"""Serial vs parallel experiment equivalence.

The parallel matrix must be a pure scheduling change: every cell derives
its outputs from its arguments alone, and the ordered merge reassembles
rows exactly as the serial loop produced them. These tests run small
configurations both ways and require equality of the dataclass results.
"""

import pytest

from repro.experiments import figure4, parallel, scaling


class TestScalingEquivalence:
    def test_serial_vs_jobs4(self):
        serial = scaling.run(scale=0.1, thread_counts=(2, 4, 8))
        fanned = parallel.run_scaling(scale=0.1, thread_counts=(2, 4, 8),
                                      jobs=4)
        assert serial == fanned

    def test_jobs_one_delegates_to_serial(self):
        serial = scaling.run(scale=0.1, thread_counts=(2, 4))
        delegated = parallel.run_scaling(scale=0.1, thread_counts=(2, 4),
                                         jobs=1)
        assert serial == delegated

    def test_jobs_none_delegates_to_serial(self):
        serial = scaling.run(scale=0.1, thread_counts=(2,))
        delegated = parallel.run_scaling(scale=0.1, thread_counts=(2,),
                                         jobs=None)
        assert serial == delegated


class TestFigure4Equivalence:
    def test_serial_vs_jobs2_small_subset(self):
        names = ("histogram", "linear_regression")
        serial = figure4.run(scale=0.1, names=names, seeds=(11,))
        fanned = parallel.run_figure4(scale=0.1, names=names, seeds=(11,),
                                      jobs=2)
        assert serial == fanned

    def test_row_order_matches_submission_order(self):
        names = ("linear_regression", "histogram")
        fanned = parallel.run_figure4(scale=0.1, names=names, seeds=(11,),
                                      jobs=2)
        assert [r.name for r in fanned.rows] == list(names)


class TestRunnerRegistry:
    def test_all_declared_experiments_have_runners(self):
        assert set(parallel.PARALLEL_EXPERIMENTS) == set(parallel.RUNNERS)

    @pytest.mark.parametrize("name", parallel.PARALLEL_EXPERIMENTS)
    def test_runner_accepts_jobs_kwarg(self, name):
        import inspect
        sig = inspect.signature(parallel.RUNNERS[name])
        assert "jobs" in sig.parameters
        assert "scale" in sig.parameters
