"""Tests for the heap substrate: size classes, arena, Hoard-style
allocator and the bump baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidFreeError, OutOfMemoryError
from repro.heap.allocator import CheetahAllocator
from repro.heap.arena import Arena, GLOBALS_BASE, HEAP_BASE
from repro.heap.bump import BumpAllocator
from repro.heap.sizeclass import MIN_SIZE_CLASS, size_class_of


class TestSizeClass:
    def test_minimum(self):
        assert size_class_of(1) == MIN_SIZE_CLASS
        assert size_class_of(MIN_SIZE_CLASS) == MIN_SIZE_CLASS

    def test_exact_powers(self):
        for p in (8, 16, 32, 64, 1024, 4096):
            assert size_class_of(p) == p

    def test_rounding_up(self):
        assert size_class_of(9) == 16
        assert size_class_of(4000) == 4096
        assert size_class_of(65) == 128

    def test_zero_and_negative_rejected(self):
        with pytest.raises(ValueError):
            size_class_of(0)
        with pytest.raises(ValueError):
            size_class_of(-3)

    @given(st.integers(min_value=1, max_value=1 << 24))
    def test_class_is_power_of_two_and_fits(self, size):
        cls = size_class_of(size)
        assert cls >= size
        assert cls & (cls - 1) == 0
        # Tightness: the next smaller power of two would not fit.
        assert cls == MIN_SIZE_CLASS or cls // 2 < size


class TestArena:
    def test_carve_is_monotonic(self):
        arena = Arena(size=1 << 20)
        a = arena.carve(100)
        b = arena.carve(100)
        assert b >= a + 100

    def test_alignment(self):
        arena = Arena(size=1 << 20)
        arena.carve(3)
        addr = arena.carve(64, align=64)
        assert addr % 64 == 0

    def test_exhaustion_raises(self):
        arena = Arena(size=128)
        arena.carve(128)
        with pytest.raises(OutOfMemoryError):
            arena.carve(1)

    def test_contains(self):
        arena = Arena(base=HEAP_BASE, size=1024)
        assert arena.contains(HEAP_BASE)
        assert arena.contains(HEAP_BASE + 1023)
        assert not arena.contains(HEAP_BASE - 1)
        assert not arena.contains(HEAP_BASE + 1024)

    def test_line_index_is_bit_shift(self):
        arena = Arena(base=HEAP_BASE, line_size=64)
        assert arena.line_index(HEAP_BASE) == 0
        assert arena.line_index(HEAP_BASE + 63) == 0
        assert arena.line_index(HEAP_BASE + 64) == 1

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            Arena(base=HEAP_BASE + 1)

    def test_globals_and_heap_segments_disjoint(self):
        assert GLOBALS_BASE + (1 << 26) <= HEAP_BASE


class TestCheetahAllocator:
    def test_allocation_inside_arena(self):
        alloc = CheetahAllocator()
        addr = alloc.allocate(100, tid=1)
        assert alloc.contains(addr)

    def test_metadata_recorded(self):
        alloc = CheetahAllocator()
        addr = alloc.allocate(100, tid=3, callsite="foo.c:9")
        info = alloc.find(addr)
        assert info.requested_size == 100
        assert info.size == 128  # power-of-two class
        assert info.tid == 3
        assert info.callsite == "foo.c:9"
        assert info.live

    def test_find_interior_pointer(self):
        alloc = CheetahAllocator()
        addr = alloc.allocate(256, tid=0)
        assert alloc.find(addr + 255).addr == addr
        assert alloc.find(addr + 256) is None or \
            alloc.find(addr + 256).addr != addr

    def test_find_unknown_address(self):
        alloc = CheetahAllocator()
        assert alloc.find(HEAP_BASE + 999999) is None

    def test_no_two_threads_share_a_cache_line(self):
        # The Hoard property the paper relies on: "two objects in the same
        # cache line will never be allocated to two different threads".
        alloc = CheetahAllocator(line_size=64)
        lines = {}
        for tid in range(8):
            for _ in range(50):
                addr = alloc.allocate(8, tid=tid)
                info = alloc.find(addr)
                for line in range(addr >> 6, (info.end - 1 >> 6) + 1):
                    owner = lines.setdefault(line, tid)
                    assert owner == tid, "line shared across threads"

    def test_free_and_reuse_same_thread_only(self):
        alloc = CheetahAllocator()
        addr = alloc.allocate(64, tid=2)
        alloc.free(addr, tid=2)
        again = alloc.allocate(64, tid=2)
        assert again == addr  # reused from the thread's free list
        other = alloc.allocate(64, tid=5)
        assert other != addr  # never handed to another thread

    def test_double_free_raises(self):
        alloc = CheetahAllocator()
        addr = alloc.allocate(64, tid=0)
        alloc.free(addr, tid=0)
        with pytest.raises(InvalidFreeError):
            alloc.free(addr, tid=0)

    def test_free_unknown_raises(self):
        alloc = CheetahAllocator()
        with pytest.raises(InvalidFreeError):
            alloc.free(0x1234, tid=0)

    def test_dead_allocations_still_findable(self):
        alloc = CheetahAllocator()
        addr = alloc.allocate(64, tid=0, callsite="gone.c:1")
        alloc.free(addr, tid=0)
        info = alloc.find(addr)
        assert info is not None and not info.live

    def test_live_allocations_listing(self):
        alloc = CheetahAllocator()
        a = alloc.allocate(32, tid=0)
        b = alloc.allocate(32, tid=0)
        alloc.free(a, tid=0)
        live = {i.addr for i in alloc.live_allocations()}
        assert live == {b}

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(1, 4096)),
                    min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_live_allocations_never_overlap(self, requests):
        alloc = CheetahAllocator()
        spans = []
        for tid, size in requests:
            addr = alloc.allocate(size, tid=tid)
            info = alloc.find(addr)
            for start, end in spans:
                assert info.end <= start or info.addr >= end
            spans.append((info.addr, info.end))


class TestBumpAllocator:
    def test_adjacent_allocations_can_share_lines(self):
        # The baseline behaviour the Hoard design eliminates.
        alloc = BumpAllocator(line_size=64)
        a = alloc.allocate(8, tid=0)
        b = alloc.allocate(8, tid=1)
        assert (a >> 6) == (b >> 6)

    def test_find_and_free(self):
        alloc = BumpAllocator()
        addr = alloc.allocate(100, tid=1, callsite="x.c:1")
        assert alloc.find(addr + 50).addr == addr
        alloc.free(addr, tid=1)
        with pytest.raises(InvalidFreeError):
            alloc.free(addr, tid=1)

    def test_line_index(self):
        alloc = BumpAllocator()
        addr = alloc.allocate(8, tid=0)
        assert alloc.line_index(addr) == (addr - alloc.arena.base) >> 6
