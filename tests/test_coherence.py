"""Tests for the MESI-style coherence directory — the ground truth that
false sharing detection is validated against."""

import pytest

from repro.sim import coherence
from repro.sim.coherence import CoherenceDirectory


def make():
    return CoherenceDirectory(line_shift=6)


class TestBasicTransitions:
    def test_first_read_is_cold(self):
        d = make()
        assert d.access(0, 0x100, False) == coherence.COLD

    def test_first_write_is_cold(self):
        d = make()
        assert d.access(0, 0x100, True) == coherence.COLD

    def test_read_after_own_read_hits(self):
        d = make()
        d.access(0, 0x100, False)
        assert d.access(0, 0x104, False) == coherence.HIT

    def test_write_after_own_write_hits(self):
        d = make()
        d.access(0, 0x100, True)
        assert d.access(0, 0x104, True) == coherence.HIT

    def test_write_after_own_read_silent_upgrade(self):
        # Exclusive-clean to modified costs nothing extra (MESI E->M).
        d = make()
        d.access(0, 0x100, False)
        assert d.access(0, 0x100, True) == coherence.HIT

    def test_read_of_clean_line_held_elsewhere_is_shared_fetch(self):
        d = make()
        d.access(0, 0x100, False)
        assert d.access(1, 0x100, False) == coherence.SHARED_CLEAN

    def test_read_of_dirty_line_is_coherence_read(self):
        d = make()
        d.access(0, 0x100, True)
        assert d.access(1, 0x100, False) == coherence.COHERENCE_READ

    def test_write_to_line_held_elsewhere_is_coherence_write(self):
        d = make()
        d.access(0, 0x100, False)
        assert d.access(1, 0x100, True) == coherence.COHERENCE_WRITE

    def test_write_to_shared_line_already_held_is_upgrade(self):
        d = make()
        d.access(0, 0x100, False)
        d.access(1, 0x100, False)
        assert d.access(0, 0x100, True) == coherence.UPGRADE

    def test_refetch_after_invalidation_not_cold(self):
        d = make()
        d.access(0, 0x100, False)
        d.access(1, 0x100, True)  # invalidates core 0
        # core 0 re-reads: the line is dirty at core 1.
        assert d.access(0, 0x100, False) == coherence.COHERENCE_READ

    def test_different_lines_are_independent(self):
        d = make()
        d.access(0, 0x100, True)
        assert d.access(1, 0x140, True) == coherence.COLD


class TestInvalidationCounting:
    def test_no_invalidations_single_core(self):
        d = make()
        for _ in range(10):
            d.access(0, 0x100, True)
            d.access(0, 0x104, False)
        assert d.total_invalidations() == 0

    def test_write_invalidates_reader(self):
        d = make()
        d.access(0, 0x100, False)
        d.access(1, 0x104, True)
        assert d.invalidations_of(0x100 >> 6) == 1

    def test_pingpong_counts_every_transfer(self):
        d = make()
        for _ in range(5):
            d.access(0, 0x100, True)
            d.access(1, 0x104, True)
        # First write is cold; each subsequent write invalidates the other.
        assert d.invalidations_of(0x100 >> 6) == 9

    def test_read_read_sharing_never_invalidates(self):
        d = make()
        for core in range(8):
            for _ in range(5):
                d.access(core, 0x100, False)
        assert d.total_invalidations() == 0

    def test_upgrade_counts_as_invalidation(self):
        d = make()
        d.access(0, 0x100, False)
        d.access(1, 0x100, False)
        d.access(0, 0x100, True)
        assert d.invalidations_of(0x100 >> 6) == 1

    def test_lines_with_invalidations_filter(self):
        d = make()
        d.access(0, 0x100, True)
        d.access(1, 0x100, True)  # 1 invalidation on line 4
        d.access(0, 0x400, True)  # no invalidation on line 0x10
        assert d.lines_with_invalidations(1) == {0x100 >> 6: 1}
        assert d.lines_with_invalidations(2) == {}

    def test_state_of_unknown_line_is_none(self):
        assert make().state_of(12345) is None

    def test_invalidations_of_unknown_line_is_zero(self):
        assert make().invalidations_of(999) == 0


class TestDirectoryInvariants:
    def test_dirty_owner_is_sole_holder(self):
        d = make()
        d.access(0, 0x100, False)
        d.access(1, 0x100, False)
        d.access(2, 0x100, True)
        state = d.state_of(0x100 >> 6)
        assert state.dirty_owner == 2
        assert state.holders == {2}

    def test_read_downgrades_dirty_line(self):
        d = make()
        d.access(0, 0x100, True)
        d.access(1, 0x100, False)
        state = d.state_of(0x100 >> 6)
        assert state.dirty_owner is None
        assert state.holders == {0, 1}


class TestFiniteCapacity:
    def test_eviction_limits_resident_lines(self):
        d = CoherenceDirectory(line_shift=6, capacity_lines=2)
        d.access(0, 0x000, False)
        d.access(0, 0x040, False)
        d.access(0, 0x080, False)  # evicts line 0
        # Re-reading the evicted line is a (non-cold) fetch, not a hit.
        assert d.access(0, 0x000, False) == coherence.SHARED_CLEAN

    def test_lru_order_respected(self):
        d = CoherenceDirectory(line_shift=6, capacity_lines=2)
        d.access(0, 0x000, False)
        d.access(0, 0x040, False)
        d.access(0, 0x000, False)  # touch line 0 again: line 1 is LRU
        d.access(0, 0x080, False)  # evicts line 1
        assert d.access(0, 0x000, False) == coherence.HIT
        assert d.access(0, 0x040, False) == coherence.SHARED_CLEAN

    def test_infinite_capacity_never_evicts(self):
        d = make()
        for i in range(1000):
            d.access(0, i * 64, False)
        for i in range(1000):
            assert d.access(0, i * 64, False) == coherence.HIT


class TestConstructionValidation:
    def test_negative_line_shift_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            CoherenceDirectory(line_shift=-1)

    def test_non_int_line_shift_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            CoherenceDirectory(line_shift=6.0)

    def test_zero_capacity_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            CoherenceDirectory(line_shift=6, capacity_lines=0)

    def test_for_line_size_valid(self):
        d = CoherenceDirectory.for_line_size(64)
        assert d.line_shift == 6
        assert d.line_of(0x7F) == 1

    @pytest.mark.parametrize("bad", [0, -64, 48, 96, 63])
    def test_for_line_size_rejects_non_power_of_two(self, bad):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            CoherenceDirectory.for_line_size(bad)


class TestExclusiveOwnerMirror:
    def test_mirrors_dirty_owner_through_transitions(self):
        d = make()
        line = d.line_of(0x100)
        assert d.exclusive_owner(line) is None
        d.access(0, 0x100, True)
        assert d.exclusive_owner(line) == 0
        d.access(1, 0x100, False)  # downgrade clears the dirty owner
        assert d.exclusive_owner(line) is None
        d.access(1, 0x100, True)  # steal: core 1 becomes owner
        assert d.exclusive_owner(line) == 1

    def test_mirror_cleared_on_capacity_eviction(self):
        d = CoherenceDirectory(line_shift=6, capacity_lines=1)
        d.access(0, 0x000, True)
        assert d.exclusive_owner(0) == 0
        d.access(0, 0x040, True)  # evicts dirty line 0
        assert d.exclusive_owner(0) is None
