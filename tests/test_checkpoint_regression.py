"""Regression tests for checkpoint timing (the quantum-limit bug).

``Engine.run`` bounds each scheduling quantum by the next *other*
runnable thread's clock (``limit = ready[0][0]``).  With a single
runnable thread ``ready`` is empty, the quantum was unbounded, and the
thread ran to completion without ever returning to the scheduling point
where checkpoints fire — so ``add_checkpoint`` callbacks fired
arbitrarily late or, if the program ended inside that quantum, never.
The fix caps the quantum limit at the next pending checkpoint cycle and
drains checkpoints the final quantum ran past (but never ones beyond
the program's end).
"""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig


def quiet_engine(**kwargs):
    kwargs.setdefault("machine", Machine(MachineConfig(), timing_jitter=0))
    return Engine(**kwargs)


class TestSingleRunnableThread:
    def test_checkpoint_fires_mid_burst(self):
        # One thread, one long fused burst.  Pre-fix: the quantum is
        # unbounded, the burst runs to completion, and the checkpoint
        # fires only at whatever scheduling point comes next (or never).
        fired = []

        def main(api):
            yield from api.loop(0x1000, 4, 100, read=True, write=False,
                                work=10, repeat=50)

        engine = quiet_engine()
        engine.add_checkpoint(5_000, lambda e, now: fired.append(now))
        result = engine.run(main)
        assert result.runtime > 5_000
        assert len(fired) == 1
        # The callback must observe a clock near the requested cycle,
        # not the end of the run: one burst row (100 accesses) costs a
        # few thousand cycles at most, nowhere near the full runtime.
        assert 5_000 <= fired[0] < result.runtime

    def test_checkpoint_timing_is_tight(self):
        # Granularity bound: the callback fires at the first scheduling
        # point past the cycle, i.e. within one quantum resumption.
        fired = []

        def main(api):
            for _ in range(200):
                yield from api.work(100)

        engine = quiet_engine()
        engine.add_checkpoint(5_000, lambda e, now: fired.append(now))
        engine.run(main)
        assert fired and 5_000 <= fired[0] <= 5_200

    def test_multiple_checkpoints_all_fire_in_order(self):
        fired = []

        def main(api):
            yield from api.loop(0x2000, 4, 50, read=True, write=True,
                                work=20, repeat=40)

        engine = quiet_engine()
        for cycle in (9_000, 3_000, 6_000):
            engine.add_checkpoint(cycle,
                                  lambda e, now, c=cycle: fired.append((c, now)))
        result = engine.run(main)
        assert [c for c, _ in fired] == [3_000, 6_000, 9_000]
        assert all(now >= c for c, now in fired)
        assert all(now < result.runtime for _, now in fired)


class TestEndOfRunDrain:
    def test_checkpoint_at_exact_end_fires(self):
        # Pre-fix: a thread finishing exactly at the checkpoint cycle is
        # never re-popped from the ready heap, so the callback was
        # silently dropped.
        fired = []

        def main(api):
            yield from api.work(100)

        engine = quiet_engine()
        engine.add_checkpoint(100, lambda e, now: fired.append(now))
        result = engine.run(main)
        assert result.runtime == 100
        assert fired == [100]

    def test_checkpoint_just_before_end_fires(self):
        fired = []

        def main(api):
            yield from api.work(100)

        engine = quiet_engine()
        engine.add_checkpoint(99, lambda e, now: fired.append(now))
        engine.run(main)
        assert fired == [100]

    def test_checkpoint_beyond_end_stays_unfired(self):
        # Simulated time never reached the cycle; draining it would
        # invent a moment that does not exist in the run.
        fired = []

        def main(api):
            yield from api.work(100)

        engine = quiet_engine()
        engine.add_checkpoint(101, lambda e, now: fired.append(now))
        engine.run(main)
        assert fired == []

    def test_drain_preserves_order_and_skips_future(self):
        fired = []

        def main(api):
            yield from api.work(50)

        engine = quiet_engine()
        for cycle in (50, 40, 10**9):
            engine.add_checkpoint(cycle,
                                  lambda e, now, c=cycle: fired.append(c))
        engine.run(main)
        assert fired == [40, 50]


class TestCheckpointApi:
    def test_checkpoint_after_run_rejected(self):
        def main(api):
            yield from api.work(1)

        engine = quiet_engine()
        engine.run(main)
        with pytest.raises(SimulationError):
            engine.add_checkpoint(10, lambda e, now: None)

    def test_callback_sees_live_engine_state(self):
        # The mid-burst fix means a single worker's counters are
        # observable while the burst is still in flight (§2.4 mid-run
        # reporting depends on this).
        snapshots = []

        def main(api):
            yield from api.loop(0x3000, 4, 100, read=True, write=False,
                                work=10, repeat=50)

        engine = quiet_engine()
        engine.add_checkpoint(
            5_000,
            lambda e, now: snapshots.append(e.threads[0].mem_accesses))
        result = engine.run(main)
        assert snapshots
        assert 0 < snapshots[0] < result.threads[0].mem_accesses
