"""Tests for the synthetic workload suite."""

import pytest

from repro.errors import ConfigError
from repro.run import run_workload
from repro.workloads import (
    FIGURE4_NAMES, PARSEC_NAMES, PHOENIX_NAMES,
    all_workload_names, get_workload,
)
from repro.workloads.base import Workload, register
from repro.workloads.micro import ArrayIncrement
from repro.workloads.phoenix import (
    LINEAR_REGRESSION_CALLSITE, LinearRegression,
)
from repro.workloads.parsec import StreamCluster

TINY = 0.08  # scale used for fast full-suite runs


class TestRegistry:
    def test_all_seventeen_figure4_apps_registered(self):
        assert len(FIGURE4_NAMES) == 17
        for name in FIGURE4_NAMES:
            assert get_workload(name) is not None

    def test_suites_partition_figure4(self):
        assert sorted(FIGURE4_NAMES) == sorted(PHOENIX_NAMES + PARSEC_NAMES)

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigError):
            get_workload("doom")

    def test_micro_registered_but_not_in_figure4(self):
        assert "array_increment" in all_workload_names()
        assert "array_increment" not in FIGURE4_NAMES

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            @register
            class Dup(Workload):
                name = "histogram"
                def main(self, api):
                    yield from api.work(1)

    def test_nameless_registration_rejected(self):
        with pytest.raises(ConfigError):
            @register
            class NoName(Workload):
                def main(self, api):
                    yield from api.work(1)


class TestBaseClass:
    def test_invalid_threads_rejected(self):
        with pytest.raises(ConfigError):
            ArrayIncrement(num_threads=0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            ArrayIncrement(scale=0)

    def test_scaled_minimum(self):
        w = ArrayIncrement(scale=1e-9)
        assert w.scaled(100) == 1

    def test_chunks_cover_range(self):
        w = ArrayIncrement()
        chunks = w.chunks(103, 8)
        assert sum(c for _, c in chunks) == 103
        assert chunks[0][0] == 0
        ends = [s + c for s, c in chunks]
        starts = [s for s, _ in chunks[1:]]
        assert starts == ends[:-1]

    def test_describe_and_repr(self):
        w = LinearRegression(num_threads=4, fixed=True)
        assert "linear_regression" in w.describe()
        assert "fixed layout" in repr(w)


class TestAllWorkloadsRun:
    @pytest.mark.parametrize("name", FIGURE4_NAMES)
    def test_runs_and_produces_accesses(self, name):
        cls = get_workload(name)
        outcome = run_workload(cls(scale=TINY), jitter_seed=1)
        assert outcome.runtime > 0
        assert outcome.result.total_accesses > 0
        # Every thread finished (the engine would raise otherwise) and
        # the program conformed to the fork-join model.
        assert outcome.result.phases.fork_join_ok

    @pytest.mark.parametrize("name", FIGURE4_NAMES)
    def test_fixed_variant_runs(self, name):
        cls = get_workload(name)
        outcome = run_workload(cls(scale=TINY, fixed=True), jitter_seed=1)
        assert outcome.runtime > 0

    @pytest.mark.parametrize("name", FIGURE4_NAMES)
    def test_deterministic_given_seed(self, name):
        cls = get_workload(name)
        a = run_workload(cls(scale=TINY), jitter_seed=5).runtime
        b = run_workload(cls(scale=TINY), jitter_seed=5).runtime
        assert a == b


class TestDocumentedFalseSharing:
    def test_ground_truth_matches_paper(self):
        from repro.workloads import Verdict
        documented = {
            name for name in FIGURE4_NAMES
            if get_workload(name).ground_truth.verdict
            is Verdict.FALSE_SHARING}
        assert documented == {"linear_regression", "streamcluster",
                              "histogram", "reverse_index", "word_count"}
        significant = {name for name in documented
                       if get_workload(name).ground_truth.significant}
        assert significant == {"linear_regression", "streamcluster"}

    def test_linear_regression_ground_truth_invalidations(self):
        out = run_workload(LinearRegression(num_threads=8, scale=0.25),
                           jitter_seed=1)
        assert out.result.machine.directory.total_invalidations() > 500

    def test_linear_regression_fix_removes_invalidations(self):
        out = run_workload(
            LinearRegression(num_threads=8, scale=0.25, fixed=True),
            jitter_seed=1)
        # The padded layout leaves only incidental sharing (points init).
        assert out.result.machine.directory.total_invalidations() < 50

    def test_linear_regression_fix_speeds_up(self):
        orig = run_workload(LinearRegression(num_threads=8, scale=0.25),
                            jitter_seed=1)
        fixed = run_workload(
            LinearRegression(num_threads=8, scale=0.25, fixed=True),
            jitter_seed=1)
        assert orig.runtime / fixed.runtime > 2.0

    def test_streamcluster_fix_small_but_real(self):
        orig = run_workload(StreamCluster(num_threads=8, scale=0.5),
                            jitter_seed=1)
        fixed = run_workload(
            StreamCluster(num_threads=8, scale=0.5, fixed=True),
            jitter_seed=1)
        ratio = orig.runtime / fixed.runtime
        assert 1.0 < ratio < 1.3

    def test_streamcluster_slot_stride_is_32_bytes(self):
        # The authors' wrong CACHE_LINE macro.
        assert StreamCluster().slot_stride == 32
        assert StreamCluster(fixed=True).slot_stride == 64

    def test_lr_callsite_constant_matches_paper(self):
        assert LINEAR_REGRESSION_CALLSITE == "linear_regression-pthread.c:139"

    def test_no_fs_workload_has_no_hot_invalidated_lines(self):
        cls = get_workload("blackscholes")
        out = run_workload(cls(scale=0.3), jitter_seed=1)
        hot = out.result.machine.directory.lines_with_invalidations(20)
        assert hot == {}


class TestThreadHeavyWorkloads:
    def test_kmeans_spawns_224_threads(self):
        out = run_workload(get_workload("kmeans")(scale=TINY),
                           jitter_seed=1)
        assert len(out.result.threads) == 1 + 14 * 16  # main + 224

    def test_x264_spawns_1024_threads(self):
        out = run_workload(get_workload("x264")(scale=TINY), jitter_seed=1)
        assert len(out.result.threads) == 1 + 64 * 16


class TestMicro:
    def test_thread_count_capped_by_elements(self):
        w = ArrayIncrement(num_threads=64)
        assert w.num_threads == w.total_elements

    def test_unfixed_layout_shares_one_line(self):
        w = ArrayIncrement(num_threads=8)
        assert w.element_stride() == 4

    def test_fixed_layout_one_line_per_element(self):
        w = ArrayIncrement(num_threads=8, fixed=True)
        assert w.element_stride() == 64

    def test_false_sharing_slowdown_exists(self):
        orig = run_workload(ArrayIncrement(num_threads=8, scale=0.15),
                            jitter_seed=1)
        fixed = run_workload(
            ArrayIncrement(num_threads=8, scale=0.15, fixed=True),
            jitter_seed=1)
        assert orig.runtime / fixed.runtime > 3.0
