"""Tests for the redesigned workload/ground-truth API and the
concurrent workload families."""

import warnings

import pytest

from repro.core.profiler import CheetahConfig
from repro.errors import ConfigError
from repro.run import run_workload
from repro.sim.params import MachineConfig
from repro.workloads import (
    CONCURRENT_NAMES,
    GroundTruth,
    Verdict,
    families,
    get_workload,
    iter_workloads,
    parameter_schema,
    suites,
    workload_info,
)

#: (workload, fast scale at which detection matches declared truth)
FAMILY_SCALES = {
    "producer_consumer_ring": 0.4,
    "work_stealing_deque": 0.4,
    "cas_retry_queue": 0.4,
    "seqlock_read_mostly": 0.75,
    "numa_ping_pong": 0.3,
}


def machine_for(cls):
    return (MachineConfig(**cls.machine_defaults)
            if cls.machine_defaults else None)


def profiled(workload, machine=None):
    return run_workload(
        workload, jitter_seed=1, with_cheetah=True, machine_config=machine,
        cheetah_config=CheetahConfig(report_true_sharing=True))


def three_way(report):
    kinds = {i.kind.value for i in report.all_instances}
    if "false sharing" in kinds:
        return "false sharing"
    if "true sharing" in kinds:
        return "true sharing"
    return "no sharing"


class TestVerdict:
    def test_coerce_accepts_member_value_and_name(self):
        assert Verdict.coerce(Verdict.TRUE_SHARING) is Verdict.TRUE_SHARING
        assert Verdict.coerce("false sharing") is Verdict.FALSE_SHARING
        assert Verdict.coerce("NONE") is Verdict.NONE

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unknown verdict"):
            Verdict.coerce("sideways sharing")


class TestGroundTruth:
    def test_constructors(self):
        fs = GroundTruth.false_sharing(objects=("x",), lines=2,
                                       fix_speedup=3.0)
        assert fs.verdict is Verdict.FALSE_SHARING and fs.significant
        ts = GroundTruth.true_sharing(objects=("head",))
        assert ts.verdict is Verdict.TRUE_SHARING and not ts.significant
        assert GroundTruth.none().verdict is Verdict.NONE

    def test_significant_requires_false_sharing(self):
        with pytest.raises(ConfigError):
            GroundTruth(verdict=Verdict.TRUE_SHARING, significant=True)

    def test_expected_lines_positive(self):
        with pytest.raises(ConfigError):
            GroundTruth(verdict=Verdict.FALSE_SHARING, expected_lines=0)

    def test_fix_speedup_positive(self):
        with pytest.raises(ConfigError):
            GroundTruth(verdict=Verdict.FALSE_SHARING,
                        expected_fix_speedup=-1.0)

    def test_dict_round_trip(self):
        truth = GroundTruth.false_sharing(
            objects=("a", "b"), lines=1, fix_speedup=5.7, note="n")
        assert GroundTruth.from_dict(truth.to_dict()) == truth

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown"):
            GroundTruth.from_dict({"verdict": "no sharing", "bogus": 1})

    def test_matches_sharing_kind_value(self):
        truth = GroundTruth.true_sharing()
        assert truth.matches("true sharing")
        assert not truth.matches("false sharing")


class TestRegistryQueries:
    def test_suites_and_families(self):
        assert "concurrent" in suites()
        for family in ("fork_join", "producer_consumer", "work_stealing",
                       "lock_free", "seqlock", "numa"):
            assert family in families()

    def test_iter_by_suite(self):
        names = [cls.name for cls in iter_workloads(suite="concurrent")]
        assert sorted(names) == sorted(CONCURRENT_NAMES)

    def test_iter_by_family(self):
        names = [cls.name for cls in iter_workloads(family="seqlock")]
        assert names == ["seqlock_read_mostly"]

    def test_iter_by_verdict_and_significance(self):
        significant = [cls.name for cls in iter_workloads(
            verdict=Verdict.FALSE_SHARING, significant=True)]
        assert "linear_regression" in significant
        assert "histogram" not in significant
        negligible = [cls.name for cls in iter_workloads(
            verdict="false sharing", significant=False)]
        assert "histogram" in negligible

    def test_iter_yields_name_order(self):
        names = [cls.name for cls in iter_workloads()]
        assert names == sorted(names)

    def test_nearest_match_suggestion(self):
        with pytest.raises(ConfigError,
                           match="did you mean 'linear_regression'"):
            get_workload("linear_regresion")

    def test_no_suggestion_for_garbage(self):
        with pytest.raises(ConfigError) as exc:
            get_workload("zzzzqqqq")
        assert "did you mean" not in str(exc.value)

    def test_parameter_schema(self):
        schema = parameter_schema(get_workload("producer_consumer_ring"))
        assert schema["scale"]["default"] == 1.0
        assert schema["num_threads"]["required"] is False

    def test_workload_info_shape(self):
        info = workload_info(get_workload("numa_ping_pong"))
        assert info["suite"] == "concurrent"
        assert info["family"] == "numa"
        assert info["ground_truth"]["verdict"] == "false sharing"
        assert info["machine_defaults"]["numa_nodes"] == 2
        assert "scale" in info["parameters"]


class TestDeprecatedBooleanPair:
    def test_derivation_matches_ground_truth_everywhere(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for cls in iter_workloads():
                truth = cls.ground_truth
                assert cls.documented_false_sharing == (
                    truth.verdict is Verdict.FALSE_SHARING)
                assert cls.significant_false_sharing == (
                    truth.verdict is Verdict.FALSE_SHARING
                    and truth.significant)

    def test_synthetic_instance_override(self):
        cls = get_workload("synthetic")
        private = cls(pattern="private")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert private.documented_false_sharing is False
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)


class TestConcurrentFamiliesRun:
    @pytest.mark.parametrize("name", CONCURRENT_NAMES)
    def test_runs_and_is_deterministic(self, name):
        cls = get_workload(name)
        scale = FAMILY_SCALES[name] / 2
        a = run_workload(cls(scale=scale), jitter_seed=5,
                         machine_config=machine_for(cls))
        b = run_workload(cls(scale=scale), jitter_seed=5,
                         machine_config=machine_for(cls))
        assert a.runtime == b.runtime > 0
        assert a.result.total_accesses > 0

    @pytest.mark.parametrize("name", CONCURRENT_NAMES)
    def test_classified_per_declared_ground_truth(self, name):
        cls = get_workload(name)
        outcome = profiled(cls(scale=FAMILY_SCALES[name]),
                           machine=machine_for(cls))
        truth = cls.ground_truth
        observed = three_way(outcome.report)
        if truth.verdict is Verdict.FALSE_SHARING and truth.significant:
            # 100% recall: reported, significant, on the declared object.
            assert observed == "false sharing"
            labels = [i.profile.label
                      for i in outcome.report.significant]
            assert any(expected in label
                       for expected in truth.expected_objects
                       for label in labels)
        else:
            # Zero false positives on true-sharing/none families.
            assert observed != "false sharing"
            assert not outcome.report.significant

    @pytest.mark.parametrize(
        "name", [n for n in CONCURRENT_NAMES
                 if get_workload(n).ground_truth.significant])
    def test_fixed_layout_removes_significant_findings(self, name):
        cls = get_workload(name)
        outcome = profiled(cls(scale=FAMILY_SCALES[name], fixed=True),
                           machine=machine_for(cls))
        assert not outcome.report.significant

    def test_ring_communication_is_true_sharing_not_false(self):
        # The pc_ring slots are legitimately communicated through; only
        # the packed cursors may be reported as false sharing. Full
        # scale: sparser sampling can miss the second toucher of a
        # slot word and misread the hand-off as disjoint words.
        cls = get_workload("producer_consumer_ring")
        outcome = profiled(cls(scale=1.0))
        for instance in outcome.report.all_instances:
            if "pc_ring" in instance.profile.label:
                assert instance.kind.value == "true sharing"


class TestDetectionExperiment:
    def test_serial_table_all_ok(self):
        from repro.experiments import detection
        result = detection.run(
            scale=0.4, names=["producer_consumer_ring", "cas_retry_queue"])
        assert result.all_ok
        assert len(result.rows) == 2
        assert "ok" in result.render()

    def test_parallel_matches_serial(self):
        from repro.experiments import detection, parallel
        names = ["work_stealing_deque", "seqlock_read_mostly"]
        serial = detection.run(scale=0.75, names=names)
        fanned = parallel.run_detection(scale=0.75, names=names, jobs=2)
        assert fanned.rows == serial.rows
        assert not fanned.failures
