"""Tests for the thread-scaling experiment."""

import pytest

from repro.experiments import scaling


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return scaling.run(scale=0.25, thread_counts=(2, 8, 16))

    def test_damage_grows_from_low_to_high_parallelism(self, result):
        damages = [r.damage for r in result.rows]
        assert damages[0] < damages[-1]
        assert all(d > 1.5 for d in damages)

    def test_fixed_runtime_roughly_flat(self, result):
        # The fixed program scales: its runtime stays within a small
        # factor while the buggy one balloons.
        fixed = [r.fixed_runtime for r in result.rows]
        assert max(fixed) < 2.5 * min(fixed)

    def test_render_contains_chart(self, result):
        text = result.render()
        assert "FS damage" in text
        assert "#" in text
