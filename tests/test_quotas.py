"""Admission control: token buckets, tenant quotas, composed policy.

Every test drives a fake clock by hand — nothing sleeps.
"""

import threading

import pytest

from repro.errors import ConfigError
from repro.service.quotas import Admission, TenantQuotas, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_admits_then_rejects(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.admit()[0] for _ in range(3)] == [True] * 3
        ok, retry_after = bucket.admit()
        assert not ok
        assert retry_after >= 1.0

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.admit()[0] and bucket.admit()[0]
        assert not bucket.admit()[0]
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.admit()[0]
        assert not bucket.admit()[0]

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == 2.0

    def test_retry_after_reflects_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1.0, clock=clock)
        assert bucket.admit()[0]
        ok, retry_after = bucket.admit()
        assert not ok
        assert retry_after == pytest.approx(2.0)  # 1 token at 0.5/s

    def test_zero_rate_disables(self):
        bucket = TokenBucket(rate=0.0, burst=0.0)
        assert all(bucket.admit()[0] for _ in range(100))

    def test_bad_burst_rejected(self):
        with pytest.raises(ConfigError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantQuotas:
    def test_buckets_are_per_tenant(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=1.0, clock=clock)
        assert quotas.admit("a")[0]
        assert not quotas.admit("a")[0]   # a's bucket is empty...
        assert quotas.admit("b")[0]       # ...b's is untouched

    def test_pending_cap(self):
        quotas = TenantQuotas(max_pending=2)
        assert quotas.admit("a")[0] and quotas.admit("a")[0]
        ok, _, reason = quotas.admit("a")
        assert not ok and reason == "pending"
        quotas.release("a")
        assert quotas.admit("a")[0]

    def test_release_balances(self):
        quotas = TenantQuotas(max_pending=1)
        assert quotas.admit("a")[0]
        quotas.release("a")
        assert quotas.pending("a") == 0
        assert quotas.snapshot() == {}

    def test_rate_rejection_does_not_leak_pending(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=1.0, max_pending=10,
                              clock=clock)
        assert quotas.admit("a")[0]
        ok, _, reason = quotas.admit("a")
        assert not ok and reason == "rate"
        assert quotas.pending("a") == 1  # only the admitted one

    def test_thread_safety_of_pending_counts(self):
        quotas = TenantQuotas(max_pending=0)

        def hammer():
            for _ in range(200):
                assert quotas.admit("t")[0]
                quotas.release("t")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert quotas.pending("t") == 0


class TestAdmission:
    def test_order_global_then_allowlist_then_tenant(self):
        clock = FakeClock()
        admission = Admission(rate=1.0, burst=1.0, tenants=("a",),
                              clock=clock)
        ok, _, reason = admission.admit("a")
        assert ok and reason == ""
        # global bucket now empty: even an unknown tenant sees "rate"
        ok, _, reason = admission.admit("zz")
        assert not ok and reason == "rate"
        clock.advance(1.0)
        ok, _, reason = admission.admit("zz")
        assert not ok and reason == "forbidden"

    def test_empty_allowlist_accepts_everyone(self):
        admission = Admission()
        for tenant in ("a", "b", "c"):
            ok, _, reason = admission.admit(tenant)
            assert ok, reason

    def test_tenant_rate_reason_is_namespaced(self):
        clock = FakeClock()
        admission = Admission(tenant_rate=1.0, tenant_burst=1.0, clock=clock)
        assert admission.admit("a")[0]
        ok, retry_after, reason = admission.admit("a")
        assert not ok and reason == "tenant_rate"
        assert retry_after >= 1.0

    def test_pending_quota_and_release(self):
        admission = Admission(tenant_max_pending=1)
        assert admission.admit("a")[0]
        ok, _, reason = admission.admit("a")
        assert not ok and reason == "pending"
        admission.release("a")
        assert admission.admit("a")[0]
