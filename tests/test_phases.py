"""Tests for fork-join phase tracking (paper Section 3.3 / Figure 3)."""

import pytest

from repro.runtime.phases import Phase, PhaseTracker


class TestPhaseBoundaries:
    def test_starts_in_serial_phase(self):
        tracker = PhaseTracker()
        assert not tracker.in_parallel_phase
        assert tracker.current.kind == "serial"

    def test_spawn_from_main_enters_parallel(self):
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=100)
        assert tracker.in_parallel_phase
        assert tracker.phases[0].end == 100

    def test_all_joined_returns_to_serial(self):
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=100)
        tracker.on_spawn(0, 2, now=110)
        tracker.on_join(0, 1, now=500)
        assert tracker.in_parallel_phase  # one child still live
        tracker.on_join(0, 2, now=600)
        assert not tracker.in_parallel_phase
        assert tracker.phases[1].end == 600

    def test_spawn_inside_parallel_extends_same_phase(self):
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=100)
        tracker.on_spawn(0, 2, now=200)
        assert len(tracker.parallel_phases()) == 1
        assert tracker.current.threads == {1, 2}

    def test_two_parallel_phases(self):
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=10)
        tracker.on_join(0, 1, now=20)
        tracker.on_spawn(0, 2, now=30)
        tracker.on_join(0, 2, now=40)
        tracker.finish(50)
        kinds = [p.kind for p in tracker.phases]
        assert kinds == ["serial", "parallel", "serial", "parallel",
                         "serial"]

    def test_finish_closes_trailing_phase(self):
        tracker = PhaseTracker()
        tracker.finish(1234)
        assert tracker.phases[-1].end == 1234
        tracker.finish(9999)  # idempotent
        assert tracker.phases[-1].end == 1234

    def test_phase_lengths_sum_to_total(self):
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=100)
        tracker.on_join(0, 1, now=400)
        tracker.finish(500)
        assert tracker.total_time() == 500
        lengths = [p.length for p in tracker.phases]
        assert lengths == [100, 300, 100]


class TestForkJoinVerification:
    def test_flat_fork_join_is_ok(self):
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=1)
        tracker.on_join(0, 1, now=2)
        assert tracker.fork_join_ok

    def test_nested_spawn_clears_flag(self):
        # Cheetah "tracks the creations and joins of threads in order to
        # verify whether an application belongs to the fork-join model".
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=1)
        tracker.on_spawn(1, 2, now=2)
        assert not tracker.fork_join_ok


class TestQueries:
    def test_phase_of_thread(self):
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=10)
        tracker.on_join(0, 1, now=20)
        tracker.on_spawn(0, 2, now=30)
        tracker.on_join(0, 2, now=40)
        assert tracker.phase_of_thread(1) is tracker.phases[1]
        assert tracker.phase_of_thread(2) is tracker.phases[3]
        assert tracker.phase_of_thread(99) is None

    def test_serial_and_parallel_partitions(self):
        tracker = PhaseTracker()
        tracker.on_spawn(0, 1, now=10)
        tracker.on_join(0, 1, now=20)
        tracker.finish(30)
        assert len(tracker.serial_phases()) == 2
        assert len(tracker.parallel_phases()) == 1

    def test_phase_length_zero_while_open(self):
        phase = Phase(kind="serial", start=10)
        assert phase.length == 0
