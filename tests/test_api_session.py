"""The Session facade, config conventions, re-exports and shims."""

import argparse
import warnings

import pytest

import repro
import repro.run
from repro.api import Session
from repro.config import build_configs
from repro.core.detection import DetectorConfig
from repro.core.profiler import CheetahConfig
from repro.errors import ConfigError
from repro.obs import ObsConfig
from repro.pmu.sampler import PMUConfig
from repro.run import run_workload
from repro.sim.params import LatencyModel, MachineConfig
from repro.workloads.micro import ArrayIncrement


class TestSessionForms:
    def test_by_name(self):
        out = Session("array_increment", threads=2, scale=0.1).run()
        assert out.runtime > 0

    def test_by_class(self):
        out = Session(ArrayIncrement, threads=2, scale=0.1).run()
        assert out.runtime > 0

    def test_by_instance(self):
        out = Session(ArrayIncrement(num_threads=2, scale=0.1)).run()
        assert out.runtime > 0

    def test_by_callable(self):
        def program(api):
            buf = yield from api.malloc(64)
            yield from api.loop(buf, 4, 4, read=True, write=True, work=1)
        out = Session(program).run()
        assert out.result.total_accesses == 8  # 4 elements, read + write

    def test_instance_with_overrides_rejected(self):
        instance = ArrayIncrement(num_threads=2, scale=0.1)
        with pytest.raises(ConfigError):
            Session(instance, threads=4)

    def test_unknown_workload_type_rejected(self):
        with pytest.raises(ConfigError):
            Session(42)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            Session("no_such_workload")


class TestSessionResults:
    def test_run_matches_legacy_path(self):
        legacy = run_workload(ArrayIncrement(num_threads=2, scale=0.2))
        via_api = Session("array_increment", threads=2, scale=0.2).run()
        assert via_api.runtime == legacy.runtime
        assert (via_api.result.total_accesses
                == legacy.result.total_accesses)

    def test_profile_matches_legacy_report(self):
        legacy = run_workload(ArrayIncrement(num_threads=4, scale=0.2),
                              with_cheetah=True)
        session = Session("array_increment", threads=4, scale=0.2)
        assert session.report().render() == legacy.report.render()

    def test_results_cached(self):
        session = Session("array_increment", threads=2, scale=0.1)
        assert session.run() is session.run()
        assert session.profile() is session.profile()
        assert session.report() is session.profile().report

    def test_obs_plumbed_through(self):
        session = Session("array_increment", threads=2, scale=0.1,
                          obs=ObsConfig(trace=False))
        out = session.run()
        metrics = out.metrics
        assert metrics["counters"]["sim_accesses_total"] \
            == out.result.total_accesses

    def test_detector_config_folded_into_cheetah(self):
        detector = DetectorConfig(detail_threshold_writes=2)
        session = Session("array_increment", detector=detector)
        assert session.cheetah.detector is detector

    def test_fresh_instance_per_execution(self):
        # run() and profile() must not share one workload's rng stream.
        session = Session("array_increment", threads=2, scale=0.2)
        plain = Session("array_increment", threads=2, scale=0.2)
        session.profile()
        assert session.run().runtime == plain.run().runtime


class TestConfigConventions:
    def test_round_trip(self):
        cfg = MachineConfig(num_cores=8, cache_line_size=32)
        again = MachineConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="wat"):
            PMUConfig.from_dict({"wat": 1})

    def test_nested_config_from_mapping(self):
        cfg = MachineConfig.from_dict({"latency": {"l1_hit": 9}})
        assert isinstance(cfg.latency, LatencyModel)
        assert cfg.latency.l1_hit == 9

    def test_from_dict_runs_validation(self):
        with pytest.raises(ConfigError):
            MachineConfig.from_dict({"num_cores": 0})

    def test_replace_reruns_validation(self):
        with pytest.raises(ConfigError):
            MachineConfig().replace(num_cores=0)

    def test_replace_returns_modified_copy(self):
        base = CheetahConfig()
        changed = base.replace(report_true_sharing=True)
        assert changed.report_true_sharing
        assert not base.report_true_sharing

    def test_obs_config_validates(self):
        with pytest.raises(ConfigError):
            ObsConfig(max_events=-1)


class TestBuildConfigs:
    def _args(self, **kwargs):
        return argparse.Namespace(**kwargs)

    def test_defaults(self):
        cfg = build_configs(self._args())
        assert cfg.machine is None and cfg.pmu is None and cfg.obs is None
        assert cfg.workload_kwargs == {"num_threads": None, "scale": 1.0,
                                       "fixed": False}

    def test_machine_from_flags(self):
        cfg = build_configs(self._args(line_size=32, cores=4))
        assert cfg.machine.cache_line_size == 32
        assert cfg.machine.num_cores == 4

    def test_period_builds_pmu(self):
        cfg = build_configs(self._args(period=64))
        assert cfg.pmu.period == 64

    def test_trace_flag_builds_obs(self):
        cfg = build_configs(self._args(trace="out.json"))
        assert cfg.obs.trace and not cfg.obs.metrics

    def test_trace_command_builds_obs(self):
        cfg = build_configs(self._args(command="trace", accesses=True,
                                       max_events=10))
        assert cfg.obs.trace and cfg.obs.trace_accesses
        assert cfg.obs.max_events == 10

    def test_metrics_flag_builds_obs(self):
        cfg = build_configs(self._args(metrics="-"))
        assert cfg.obs.metrics and not cfg.obs.trace


class TestReexports:
    def test_blessed_names_at_top_level(self):
        assert repro.Session is Session
        assert repro.run_workload is repro.run.run_workload
        assert repro.RunOutcome is repro.run.RunOutcome
        assert repro.DEFAULT_SEEDS is repro.run.DEFAULT_SEEDS
        assert repro.CheetahConfig is CheetahConfig
        assert repro.DetectorConfig is DetectorConfig
        assert repro.PMUConfig is PMUConfig
        assert repro.MachineConfig is MachineConfig
        assert repro.ObsConfig is ObsConfig


class TestDeprecationShims:
    def test_moved_names_warn_and_alias(self):
        import repro.experiments.runner as runner
        for name in ("run_workload", "RunOutcome", "DEFAULT_SEEDS"):
            with pytest.warns(DeprecationWarning, match="repro.run"):
                value = getattr(runner, name)
            assert value is getattr(repro.run, name)

    def test_moved_names_listed_in_dir(self):
        import repro.experiments.runner as runner
        assert "run_workload" in dir(runner)

    def test_unknown_attribute_still_raises(self):
        import repro.experiments.runner as runner
        with pytest.raises(AttributeError):
            runner.no_such_thing

    def test_kept_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.experiments.runner import format_table  # noqa: F401
