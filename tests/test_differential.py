"""Differential fuzzer + fixed corpus tests (repro.sim.check.fuzz).

The checked-in corpus (tests/data/fuzz_corpus.json) is the permanent
regression set: every spec must produce bit-identical fingerprints
across the fused, observed and sanitized execution paths, with and
without a PMU attached.
"""

from pathlib import Path

import pytest

from repro.sim.check.fuzz import (
    diff_spec, fingerprint, fuzz, generate_spec, load_corpus, run_spec,
)

CORPUS_PATH = Path(__file__).parent / "data" / "fuzz_corpus.json"
CORPUS = load_corpus(CORPUS_PATH)


class TestGenerator:
    def test_spec_is_deterministic(self):
        assert generate_spec(42) == generate_spec(42)
        assert generate_spec(42) != generate_spec(43)

    def test_spec_is_json_plain(self):
        import json
        spec = generate_spec(7)
        assert json.loads(json.dumps(spec)) == spec

    def test_corpus_matches_generator(self):
        # The corpus was produced by generate_spec over these seeds; if
        # the generator changes shape, regenerate the corpus (see
        # save_corpus) in the same change — stale corpora test nothing.
        for spec in CORPUS:
            assert spec == generate_spec(spec["seed"])


class TestRunSpec:
    def test_same_spec_same_fingerprint(self):
        spec = CORPUS[0]
        assert run_spec(spec) == run_spec(spec)

    def test_fingerprint_covers_all_run_outputs(self):
        fp = run_spec(CORPUS[0], pmu=True)
        assert set(fp) == {"runtime", "steps", "threads", "machine",
                           "invalidations", "pmu"}
        assert fp["runtime"] > 0
        assert fp["machine"][0] > 0  # total accesses

    def test_checkpoint_specs_fingerprint_their_fires(self):
        spec = next(s for s in CORPUS if s.get("checkpoints"))
        fp = run_spec(spec)
        assert "checkpoints" in fp
        # Every fired entry is (registered_cycle, fire_clock) with the
        # fire at or past the registered cycle.
        for cycle, now in fp["checkpoints"]:
            assert cycle in spec["checkpoints"]
            assert now >= cycle

    def test_vector_kernel_fingerprint_matches_fused(self):
        spec = CORPUS[0]
        assert run_spec(spec, kernel="vector") == run_spec(spec)

    def test_different_seeds_differ(self):
        # Not logically required, but if every program fingerprints the
        # same thing the differential harness is vacuous.
        fps = {repr(run_spec(spec)) for spec in CORPUS[:3]}
        assert len(fps) == 3


@pytest.mark.parametrize("spec", CORPUS, ids=lambda s: hex(s["seed"]))
class TestCorpus:
    def test_all_paths_bit_identical(self, spec):
        assert diff_spec(spec) is None


class TestDivergenceReporting:
    def test_sanitizer_path_divergence_is_reported(self, monkeypatch):
        # Force the checked variant onto a different machine shape and
        # make sure diff_spec names the variant pair and the first
        # fingerprint key that differs.
        import repro.sim.check.fuzz as fuzz_mod

        real_run_spec = fuzz_mod.run_spec

        def skewed(spec, **kwargs):
            fp = real_run_spec(spec, **kwargs)
            if kwargs.get("check"):
                fp["runtime"] += 1
            return fp

        monkeypatch.setattr(fuzz_mod, "run_spec", skewed)
        report = fuzz_mod.diff_spec(CORPUS[0])
        assert report is not None
        assert report["seed"] == CORPUS[0]["seed"]
        assert report["variants"] == ("fast", "checked")
        assert report["delta"].startswith("runtime:")

    def test_fuzz_returns_empty_on_clean_paths(self):
        assert fuzz(CORPUS[0]["seed"], 1) == []
