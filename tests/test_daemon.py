"""The serve daemon end to end, over real HTTP on an ephemeral port."""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigError, ServiceError
from repro.request import RunRequest
from repro.service.daemon import Daemon, ServeConfig

WINDOWED = RunRequest(workload="linear_regression", threads=4,
                      detector="windowed")
NATIVE = RunRequest(workload="histogram", threads=2, scale=0.2)


@pytest.fixture
def daemon(tmp_path):
    d = Daemon(ServeConfig(
        port=0, workers=2, cache_dir=str(tmp_path / "cache"),
        sink_dir=str(tmp_path / "sink"), drain_timeout=10.0)).start()
    yield d
    d.shutdown()


class Client:
    def __init__(self, daemon):
        self.base = f"http://127.0.0.1:{daemon.port}"

    def request(self, path, body=None, tenant=None, method=None):
        headers = {}
        if tenant is not None:
            headers["X-Repro-Tenant"] = tenant
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(self.base + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read()), resp.headers
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), exc.headers

    def submit(self, run_request, tenant=None):
        return self.request("/v1/jobs",
                            body={"request": run_request.to_dict()},
                            tenant=tenant)

    def wait(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body, _ = self.request(f"/v1/jobs/{job_id}")
            assert status == 200
            if body["status"] in ("done", "failed"):
                return body
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not finish")

    def events(self, job_id):
        """Read the NDJSON stream to completion; returns the events."""
        with urllib.request.urlopen(
                f"{self.base}/v1/jobs/{job_id}/events", timeout=60) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            return [json.loads(line) for line in resp if line.strip()]


class TestJobLifecycle:
    def test_submit_poll_outcome(self, daemon):
        client = Client(daemon)
        status, body, _ = client.submit(NATIVE)
        assert status == 202
        job = client.wait(body["id"])
        assert job["status"] == "done"
        assert job["cached"] is False
        assert job["workload"] == "histogram"
        assert job["outcome"]["result"]["runtime"] > 0

    def test_outcome_is_byte_identical_to_direct_execution(self, daemon):
        client = Client(daemon)
        _, body, _ = client.submit(WINDOWED)
        job = client.wait(body["id"])
        direct = WINDOWED.execute().to_dict()
        assert json.dumps(job["outcome"], sort_keys=True) \
            == json.dumps(direct, sort_keys=True)

    def test_warm_resubmission_is_served_from_cache(self, daemon):
        client = Client(daemon)
        _, first, _ = client.submit(NATIVE)
        done_first = client.wait(first["id"])
        _, second, _ = client.submit(NATIVE)
        done_second = client.wait(second["id"])
        assert done_second["cached"] is True
        assert json.dumps(done_first["outcome"], sort_keys=True) \
            == json.dumps(done_second["outcome"], sort_keys=True)

    def test_unknown_job_404(self, daemon):
        status, body, _ = Client(daemon).request("/v1/jobs/job-999999")
        assert status == 404
        assert "no such job" in body["error"]

    def test_bad_body_400(self, daemon):
        client = Client(daemon)
        status, body, _ = client.request("/v1/jobs", body={"nope": 1})
        assert status == 400
        status, body, _ = client.request(
            "/v1/jobs", body={"request": {"workload": ""}})
        assert status == 400
        status, body, _ = client.request(
            "/v1/jobs", body={"request": {"workload": "histogram",
                                          "speed": 9}})
        assert status == 400
        assert "unknown" in body["error"]

    def test_invalid_workload_fails_job_not_daemon(self, daemon):
        client = Client(daemon)
        _, body, _ = client.submit(RunRequest(workload="no_such_workload"))
        job = client.wait(body["id"])
        assert job["status"] == "failed"
        assert "no_such_workload" in job["error"]
        # the daemon survives: next job is fine
        _, body, _ = client.submit(NATIVE)
        assert client.wait(body["id"])["status"] == "done"


class TestStreamingEvents:
    def test_events_stream_live_before_completion(self, daemon):
        """Findings arrive on /events while the job is still running."""
        client = Client(daemon)
        # big enough that the run takes a moment; windowed detector
        # emits mid-run
        slow = RunRequest(workload="linear_regression", threads=4,
                          scale=2.0, detector="windowed")
        _, body, _ = client.submit(slow)
        job_id = body["id"]
        got_event_while_running = []

        def watch():
            with urllib.request.urlopen(
                    f"{client.base}/v1/jobs/{job_id}/events",
                    timeout=60) as resp:
                for line in resp:
                    if not line.strip():
                        continue
                    status, snapshot, _ = client.request(
                        f"/v1/jobs/{job_id}")
                    got_event_while_running.append(
                        (json.loads(line), snapshot["status"]))

        watcher = threading.Thread(target=watch)
        watcher.start()
        client.wait(job_id)
        watcher.join(timeout=60)
        assert got_event_while_running
        first_event, status_at_first = got_event_while_running[0]
        assert first_event["line"] > 0
        assert first_event["job_id"] == job_id
        assert status_at_first == "running"

    def test_cached_job_replays_identical_events(self, daemon):
        client = Client(daemon)
        _, first, _ = client.submit(WINDOWED)
        client.wait(first["id"])
        fresh_events = Client(daemon).events(first["id"])
        _, second, _ = client.submit(WINDOWED)
        client.wait(second["id"])
        cached_events = Client(daemon).events(second["id"])
        strip = lambda evs: [
            {k: v for k, v in e.items() if k != "job_id"} for e in evs]
        assert strip(cached_events) == strip(fresh_events)
        assert fresh_events  # windowed linear_regression emits

    def test_native_job_event_stream_is_empty_and_terminates(self, daemon):
        client = Client(daemon)
        _, body, _ = client.submit(NATIVE)
        client.wait(body["id"])
        assert client.events(body["id"]) == []


class TestAdmission:
    def test_dedupe_under_concurrent_submission(self, tmp_path):
        daemon = Daemon(ServeConfig(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            sink_dir=str(tmp_path / "sink"))).start()
        try:
            client = Client(daemon)
            results = []

            def submit():
                results.append(client.submit(WINDOWED))

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ids = {body["id"] for _, body, _ in results}
            assert len(ids) == 1  # every duplicate landed on one job
            assert sum(1 for _, body, _ in results
                       if body.get("deduped")) == 7
            job = client.wait(ids.pop())
            assert job["status"] == "done"
        finally:
            daemon.shutdown()

    def test_distinct_specs_get_distinct_jobs(self, daemon):
        client = Client(daemon)
        _, a, _ = client.submit(NATIVE)
        _, b, _ = client.submit(WINDOWED)
        assert a["id"] != b["id"]
        assert client.wait(a["id"])["status"] == "done"
        assert client.wait(b["id"])["status"] == "done"

    def test_global_rate_limit_429_with_retry_after(self, tmp_path):
        daemon = Daemon(ServeConfig(
            port=0, workers=1, rate=0.001, burst=1.0,
            cache_dir=str(tmp_path / "cache"),
            sink_dir=str(tmp_path / "sink"))).start()
        try:
            client = Client(daemon)
            status, _, _ = client.submit(NATIVE)
            assert status == 202
            status, body, headers = client.submit(WINDOWED)
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "rate" in body["error"]
        finally:
            daemon.shutdown()

    def test_tenant_quota_exhaustion_and_isolation(self, tmp_path):
        daemon = Daemon(ServeConfig(
            port=0, workers=1, tenant_rate=0.001, tenant_burst=1.0,
            cache_dir=str(tmp_path / "cache"),
            sink_dir=str(tmp_path / "sink"))).start()
        try:
            client = Client(daemon)
            status, _, _ = client.submit(NATIVE, tenant="a")
            assert status == 202
            status, _, headers = client.submit(WINDOWED, tenant="a")
            assert status == 429
            assert "Retry-After" in headers
            # tenant b has its own bucket
            status, _, _ = client.submit(WINDOWED, tenant="b")
            assert status == 202
        finally:
            daemon.shutdown()

    def test_allowlist_403(self, tmp_path):
        daemon = Daemon(ServeConfig(
            port=0, workers=1, tenants=("alice",),
            cache_dir=str(tmp_path / "cache"),
            sink_dir=str(tmp_path / "sink"))).start()
        try:
            client = Client(daemon)
            status, _, _ = client.submit(NATIVE, tenant="alice")
            assert status == 202
            status, body, _ = client.submit(NATIVE, tenant="mallory")
            assert status == 403
            assert "mallory" in body["error"]
        finally:
            daemon.shutdown()


class TestFindingsEndpoint:
    def test_aggregation_across_three_runs(self, daemon):
        client = Client(daemon)
        requests = [
            WINDOWED,
            RunRequest(workload="linear_regression", threads=8,
                       detector="windowed"),
            RunRequest(workload="histogram", threads=4, profile=True),
        ]
        jobs = [client.submit(r)[1]["id"] for r in requests]
        outcomes = [client.wait(j) for j in jobs]
        assert all(o["status"] == "done" for o in outcomes)

        status, body, _ = client.request("/v1/findings?view=stats")
        assert status == 200
        assert body["stats"]["kinds"]["run"] == 3

        expected_findings = sum(
            len(o["outcome"]["streaming_findings"]) for o in outcomes)
        status, body, _ = client.request("/v1/findings")
        finding_rows = [r for r in body["rows"] if r["kind"] == "finding"]
        assert len(finding_rows) == expected_findings

        status, body, _ = client.request(
            "/v1/findings?view=top_lines&workload=linear_regression")
        top = body["top_lines"]
        assert top and top[0]["invalidations"] > 0
        assert top[0]["runs"] == 2  # both linear_regression runs hit it

        status, body, _ = client.request("/v1/findings?view=verdicts")
        assert "linear_regression" in body["verdicts"]

        status, body, _ = client.request("/v1/findings?view=overhead")
        assert body["overhead"]["p50"] > 0

    def test_unknown_view_400(self, daemon):
        status, body, _ = Client(daemon).request("/v1/findings?view=pie")
        assert status == 400
        assert "unknown view" in body["error"]


class TestMetricsAndHealth:
    def test_healthz(self, daemon):
        status, body, _ = Client(daemon).request("/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_metrics_exposition(self, daemon):
        client = Client(daemon)
        _, body, _ = client.submit(NATIVE)
        client.wait(body["id"])
        with urllib.request.urlopen(f"{client.base}/metrics",
                                    timeout=30) as resp:
            text = resp.read().decode()
        assert "daemon_submissions_total" in text
        assert 'daemon_jobs_total{status="done"} 1' in text
        assert "daemon_queue_depth" in text
        assert "service_runs_total" in text

    def test_unknown_path_404(self, daemon):
        status, _, _ = Client(daemon).request("/v2/nothing")
        assert status == 404


class TestGracefulShutdown:
    def test_drain_finishes_inflight_jobs_and_flushes_sink(self, tmp_path):
        daemon = Daemon(ServeConfig(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            sink_dir=str(tmp_path / "sink"), drain_timeout=60.0)).start()
        client = Client(daemon)
        _, body, _ = client.submit(WINDOWED)
        job_id = body["id"]
        daemon.shutdown()  # drains the queued/running job
        job = daemon.get_job(job_id)
        assert job.status == "done"
        # sink was flushed: a fresh handle sees sealed segments only
        from repro.service.sink import FindingsSink
        reopened = FindingsSink(tmp_path / "sink")
        stats = reopened.stats()
        assert stats["buffered_rows"] == 0
        assert stats["rows"] >= 1 + len(job.outcome.streaming_findings)

    def test_shutdown_is_idempotent(self, tmp_path):
        daemon = Daemon(ServeConfig(
            port=0, cache_dir=str(tmp_path / "cache"),
            sink_dir=str(tmp_path / "sink"))).start()
        daemon.shutdown()
        daemon.shutdown()


class TestStartupFailures:
    def test_port_in_use_is_service_error(self, tmp_path):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(ServiceError, match="cannot bind"):
                Daemon(ServeConfig(port=port,
                                   cache_dir=str(tmp_path / "cache"),
                                   sink_dir=str(tmp_path / "sink")))
        finally:
            blocker.close()

    def test_cli_exit_2_on_occupied_port(self, tmp_path, capsys):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = cli_main(["serve", "--port", str(port),
                           "--cache-dir", str(tmp_path / "cache"),
                           "--sink-dir", str(tmp_path / "sink")])
        finally:
            blocker.close()
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro serve:")
        assert "\n" == err[err.index("\n"):]  # exactly one line

    def test_cli_exit_2_on_bad_quota_config(self, capsys):
        rc = cli_main(["serve", "--port", "0", "--rate", "5",
                       "--burst", "0.5"])
        assert rc == 2
        assert "burst" in capsys.readouterr().err

    def test_bad_serve_config_rejected(self):
        with pytest.raises(ConfigError):
            ServeConfig(workers=0)
        with pytest.raises(ConfigError):
            ServeConfig(port=99999)
        with pytest.raises(ConfigError):
            ServeConfig(max_queue=0)
        with pytest.raises(ConfigError):
            ServeConfig(drain_timeout=-1.0)
