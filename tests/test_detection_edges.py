"""Edge cases in detection and reporting not covered elsewhere."""

import pytest

from repro.core.detection import (
    DetectorConfig, FalseSharingDetector, SharingKind,
)
from repro.core.export import instance_to_dict
from repro.core.report import render_object
from repro.heap.allocator import CheetahAllocator
from repro.pmu.sample import MemorySample
from repro.symbols.table import SymbolTable


def sample(addr, tid, is_write, latency=10):
    return MemorySample(tid=tid, core=tid, addr=addr, is_write=is_write,
                        latency=latency, size=4, timestamp=0)


class TestPendingBuffer:
    def test_pending_capped(self):
        det = FalseSharingDetector()
        # A line with many reads and only one write never becomes
        # detailed; its pending buffer must not grow without bound.
        for i in range(1000):
            det.on_sample(sample(0x100, 1 + i % 4, False), True)
        assert len(det._pending[0x100 >> 6]) <= det._PENDING_CAP

    def test_pending_cleared_on_promotion(self):
        det = FalseSharingDetector()
        det.on_sample(sample(0x100, 1, True), True)
        det.on_sample(sample(0x104, 2, True), True)
        det.on_sample(sample(0x100, 1, True), True)
        assert (0x100 >> 6) not in det._pending

    def test_overflowing_pending_reads_dropped_not_crashing(self):
        det = FalseSharingDetector()
        for i in range(100):
            det.on_sample(sample(0x200, i % 8, False), True)
        # Promote late: only the first _PENDING_CAP replayed.
        for _ in range(3):
            det.on_sample(sample(0x200, 1, True), True)
        detail = det.detailed_line(0x200 >> 6)
        assert detail is not None
        assert detail.accesses <= det._PENDING_CAP + 3


class TestMultipleObjects:
    def test_two_hot_objects_reported_separately(self):
        alloc = CheetahAllocator()
        a = alloc.allocate(64, tid=0, callsite="a.c:1")
        b = alloc.allocate(64, tid=0, callsite="b.c:1")
        det = FalseSharingDetector(DetectorConfig(min_invalidations=2))
        for _ in range(15):
            det.on_sample(sample(a, 1, True), True)
            det.on_sample(sample(a + 4, 2, True), True)
            det.on_sample(sample(b, 3, True), True)
            det.on_sample(sample(b + 4, 4, True), True)
        profiles = det.build_objects(alloc, SymbolTable())
        assert {p.label for p in profiles} == {"a.c:1", "b.c:1"}
        for p in profiles:
            assert p.classify(0.5) is SharingKind.FALSE_SHARING
            assert len(p.tids) == 2

    def test_heap_and_global_objects_coexist(self):
        alloc = CheetahAllocator()
        table = SymbolTable()
        heap_obj = alloc.allocate(64, tid=0, callsite="h.c:1")
        global_obj = table.define("g", 64, align=64)
        det = FalseSharingDetector(DetectorConfig(min_invalidations=2))
        for _ in range(15):
            det.on_sample(sample(heap_obj, 1, True), True)
            det.on_sample(sample(heap_obj + 4, 2, True), True)
            det.on_sample(sample(global_obj, 3, True), True)
            det.on_sample(sample(global_obj + 4, 4, True), True)
        profiles = det.build_objects(alloc, table)
        kinds = {p.kind for p in profiles}
        assert kinds == {"heap", "global"}


class TestClassificationBoundaries:
    def _object(self, shared_fraction):
        alloc = CheetahAllocator()
        base = alloc.allocate(64, tid=0, callsite="mix.c:1")
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        shared = int(40 * shared_fraction)
        # Shared-word traffic (both threads on word 0).
        for i in range(shared):
            det.on_sample(sample(base, 1 + i % 2, True), True)
        # Disjoint-word traffic.
        for i in range(40 - shared):
            tid = 1 + i % 2
            det.on_sample(sample(base + tid * 4, tid, True), True)
        profiles = det.build_objects(alloc, SymbolTable())
        return profiles[0] if profiles else None

    def test_mostly_disjoint_is_false_sharing(self):
        profile = self._object(0.2)
        assert profile.classify(0.5) is SharingKind.FALSE_SHARING

    def test_mostly_shared_is_true_sharing(self):
        profile = self._object(0.9)
        assert profile.classify(0.5) is SharingKind.TRUE_SHARING

    def test_threshold_is_configurable(self):
        profile = self._object(0.4)
        assert profile.classify(0.5) is SharingKind.FALSE_SHARING
        assert profile.classify(0.3) is SharingKind.TRUE_SHARING


class TestRegionRendering:
    def test_region_object_renders_and_exports(self):
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        for _ in range(10):
            det.on_sample(sample(0x900000, 1, True), True)
            det.on_sample(sample(0x900004, 2, True), True)
        profiles = det.build_objects(CheetahAllocator(), SymbolTable())
        from repro.core.assessment import Assessment
        from repro.core.report import ObjectReport
        report = ObjectReport(
            profile=profiles[0],
            assessment=Assessment(improvement=1.5, real_runtime=100,
                                  predicted_runtime=66.0,
                                  aver_nofs_cycles=3.0),
            kind=SharingKind.FALSE_SHARING)
        text = render_object(report)
        assert "unattributed region" in text
        data = instance_to_dict(report)
        assert data["object"]["type"] == "region"


class TestThresholdBoundaries:
    """Pin the boundary semantics the DetectorConfig docstring promises.

    All three thresholds are documented with explicit >=/strictly-exceeds
    semantics; these tests are the executable form of that contract.
    """

    def _profile(self, accesses, shared):
        from repro.core.detection import ObjectProfile
        return ObjectProfile(
            key=("heap", 1), kind="heap", start=0, end=64, size=64,
            label="x.c:1", accesses=accesses,
            shared_word_accesses=shared,
            per_tid_accesses={1: accesses // 2, 2: accesses - accesses // 2})

    def test_true_sharing_fraction_at_threshold_is_true_sharing(self):
        # Exactly at the fraction: >= semantics, counts as true sharing.
        assert (self._profile(10, 5).classify(0.5)
                is SharingKind.TRUE_SHARING)

    def test_true_sharing_fraction_just_below_is_false_sharing(self):
        assert (self._profile(10, 4).classify(0.5)
                is SharingKind.FALSE_SHARING)

    def test_detail_threshold_strictly_exceeds(self):
        # Default detail_threshold_writes=2: the *third* write promotes.
        det = FalseSharingDetector()
        line = 0x700000 >> 6
        det.on_sample(sample(0x700000, 1, True), True)
        det.on_sample(sample(0x700004, 2, True), True)
        assert det.detailed_line(line) is None
        det.on_sample(sample(0x700000, 1, True), True)
        assert det.detailed_line(line) is not None

    def test_detail_threshold_zero_promotes_on_first_write(self):
        det = FalseSharingDetector(DetectorConfig(detail_threshold_writes=0))
        det.on_sample(sample(0x700000, 1, True), True)
        assert det.detailed_line(0x700000 >> 6) is not None

    def test_reads_never_count_toward_detail_threshold(self):
        det = FalseSharingDetector()
        for i in range(50):
            det.on_sample(sample(0x700000, 1 + i % 4, False), True)
        assert det.detailed_line(0x700000 >> 6) is None

    def test_min_invalidations_is_inclusive(self):
        # Build identical ping-pong traffic under two configs: a line
        # with exactly N sampled invalidations is susceptible at
        # min_invalidations=N but not at N+1.
        def detector(minimum):
            det = FalseSharingDetector(
                DetectorConfig(min_invalidations=minimum))
            for _ in range(6):
                det.on_sample(sample(0x800000, 1, True), True)
                det.on_sample(sample(0x800004, 2, True), True)
            return det

        line = 0x800000 >> 6
        observed = detector(1).detailed_line(line).invalidations
        assert observed >= 2
        assert line in detector(observed).susceptible_lines()
        assert line not in detector(observed + 1).susceptible_lines()
