"""Tests for the simulated PMU: sampling mechanics, jitter, costs."""

import pytest

from repro.errors import ConfigError
from repro.pmu.sampler import PMU, PMUConfig


def make(period=100, jitter=0.0, handler_cost=50, trap_cost=10,
         thread_setup_cost=1000, seed=1):
    return PMU(PMUConfig(period=period, jitter=jitter,
                         handler_cost=handler_cost, trap_cost=trap_cost,
                         thread_setup_cost=thread_setup_cost, seed=seed))


class TestConfig:
    def test_defaults_valid(self):
        PMUConfig()

    def test_period_must_be_positive(self):
        with pytest.raises(ConfigError):
            PMUConfig(period=0)

    def test_jitter_bounds(self):
        with pytest.raises(ConfigError):
            PMUConfig(jitter=1.0)
        with pytest.raises(ConfigError):
            PMUConfig(jitter=-0.1)

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigError):
            PMUConfig(handler_cost=-1)


class TestSampling:
    def test_setup_cost_returned(self):
        pmu = make()
        assert pmu.on_thread_start(1) == 1000
        assert pmu.threads_set_up == 1

    def test_fires_every_period_accesses(self):
        pmu = make(period=10)
        samples = []
        pmu.install_handler(samples.append)
        pmu.on_thread_start(1)
        for i in range(100):
            pmu.on_access(1, 0, 0x100 + i, False, 3, 4, i)
        assert len(samples) == 10

    def test_sample_carries_access_details(self):
        pmu = make(period=1)
        samples = []
        pmu.install_handler(samples.append)
        pmu.on_thread_start(7)
        pmu.on_access(7, 3, 0xABC, True, 55, 8, 999)
        s = samples[0]
        assert (s.tid, s.core, s.addr, s.is_write, s.latency, s.size,
                s.timestamp) == (7, 3, 0xABC, True, 55, 8, 999)

    def test_handler_cost_charged_on_fire_only(self):
        pmu = make(period=10, handler_cost=77)
        pmu.install_handler(lambda s: None)
        pmu.on_thread_start(1)
        costs = [pmu.on_access(1, 0, 0, False, 3, 4, 0) for _ in range(10)]
        assert costs.count(0) == 9
        assert costs.count(77) == 1

    def test_work_batch_fires_traps(self):
        pmu = make(period=100, trap_cost=5)
        pmu.on_thread_start(1)
        # 250 instructions at once crosses the threshold twice.
        assert pmu.on_work(1, 250) == 10
        assert pmu.samples_fired == 2
        assert pmu.memory_samples == 0

    def test_work_without_crossing_costs_nothing(self):
        pmu = make(period=100)
        pmu.on_thread_start(1)
        assert pmu.on_work(1, 50) == 0

    def test_threads_sampled_independently(self):
        pmu = make(period=10)
        pmu.on_thread_start(1)
        pmu.on_thread_start(2)
        fired = 0
        for _ in range(9):
            fired += bool(pmu.on_access(1, 0, 0, False, 3, 4, 0))
        # Thread 2's counter is untouched by thread 1's accesses.
        for _ in range(9):
            fired += bool(pmu.on_access(2, 0, 0, False, 3, 4, 0))
        assert fired == 0

    def test_no_handler_fire_is_a_trap(self):
        # A fire with no handler installed takes the interrupt but
        # discards the sample: trap cost, no memory sample, no
        # handler_cost charged (this used to count memory_samples and
        # charge handler_cost for a sample nobody received).
        pmu = make(period=2, handler_cost=77, trap_cost=9)
        pmu.on_thread_start(1)
        assert pmu.on_access(1, 0, 0, False, 3, 4, 0) == 0
        assert pmu.on_access(1, 0, 0, False, 3, 4, 0) == 9
        assert pmu.samples_fired == 1
        assert pmu.memory_samples == 0
        assert pmu.overhead_by_tid[1] == 1000 + 9


class TestJitter:
    def test_jittered_period_within_bounds(self):
        pmu = make(period=100, jitter=0.25)
        pmu.on_thread_start(1)
        fires = []
        count = 0
        for i in range(5000):
            count += 1
            if pmu.on_access(1, 0, 0, False, 3, 4, i):
                fires.append(count)
                count = 0
        assert fires
        assert all(75 <= gap <= 125 for gap in fires)

    def test_deterministic_per_seed(self):
        def gaps(seed):
            pmu = make(period=64, jitter=0.25, seed=seed)
            pmu.on_thread_start(1)
            out = []
            count = 0
            for i in range(2000):
                count += 1
                if pmu.on_access(1, 0, 0, False, 3, 4, i):
                    out.append(count)
                    count = 0
            return out
        assert gaps(5) == gaps(5)
        assert gaps(5) != gaps(6)

    def test_mean_rate_preserved(self):
        pmu = make(period=50, jitter=0.25)
        pmu.on_thread_start(1)
        fires = 0
        n = 50_000
        for i in range(n):
            if pmu.on_access(1, 0, 0, False, 3, 4, i):
                fires += 1
        assert abs(fires - n / 50) / (n / 50) < 0.1


class TestUnarmedThread:
    """on_access/on_work for a never-armed tid must raise a diagnosable
    SimulationError, not a bare KeyError from the countdown table."""

    def test_on_access_unarmed_raises_simulation_error(self):
        from repro.errors import SimulationError
        pmu = PMU(PMUConfig(period=32))
        with pytest.raises(SimulationError, match="not armed for thread 7"):
            pmu.on_access(7, 0, 0x1000, False, 10, 4, 0)

    def test_on_work_unarmed_raises_simulation_error(self):
        from repro.errors import SimulationError
        pmu = PMU(PMUConfig(period=32))
        with pytest.raises(SimulationError, match="not armed for thread 7"):
            pmu.on_work(7, 100)

    def test_message_names_the_missing_setup_call(self):
        from repro.errors import SimulationError
        pmu = PMU(PMUConfig(period=32))
        with pytest.raises(SimulationError, match="on_thread_start"):
            pmu.on_work(3, 1)

    def test_armed_thread_unaffected(self):
        pmu = PMU(PMUConfig(period=32))
        pmu.on_thread_start(7)
        assert pmu.on_access(7, 0, 0x1000, False, 10, 4, 0) == 0
        assert pmu.on_work(7, 5) == 0
