"""Tests for MachineConfig and LatencyModel validation and helpers."""

import pytest

from repro.errors import ConfigError
from repro.sim.params import LatencyModel, MachineConfig


class TestLatencyModel:
    def test_defaults_validate(self):
        LatencyModel().validate()

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel(l1_hit=0).validate()

    def test_negative_cold_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel(cold=-5).validate()

    def test_hit_must_be_cheaper_than_shared(self):
        with pytest.raises(ConfigError):
            LatencyModel(l1_hit=50, shared_clean=40).validate()

    def test_shared_must_be_cheaper_than_coherence_write(self):
        with pytest.raises(ConfigError):
            LatencyModel(shared_clean=100, coherence_write=65).validate()

    def test_ordering_of_defaults(self):
        lat = LatencyModel()
        assert lat.l1_hit < lat.shared_clean < lat.coherence_write
        assert lat.l1_hit < lat.coherence_read
        assert lat.prefetched < lat.shared_clean


class TestMachineConfig:
    def test_defaults(self):
        cfg = MachineConfig()
        assert cfg.num_cores == 48  # the paper's AMD Opteron
        assert cfg.cache_line_size == 64
        assert cfg.word_size == 4

    def test_line_shift(self):
        assert MachineConfig(cache_line_size=64).line_shift == 6
        assert MachineConfig(cache_line_size=32).line_shift == 5
        assert MachineConfig(cache_line_size=128).line_shift == 7

    def test_line_of(self):
        cfg = MachineConfig(cache_line_size=64)
        assert cfg.line_of(0) == 0
        assert cfg.line_of(63) == 0
        assert cfg.line_of(64) == 1
        assert cfg.line_of(0x40000000) == 0x40000000 >> 6

    def test_word_of(self):
        cfg = MachineConfig()
        assert cfg.word_of(0) == 0
        assert cfg.word_of(3) == 0
        assert cfg.word_of(4) == 1

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(cache_line_size=48)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cores=0)

    def test_line_smaller_than_word_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(cache_line_size=2, word_size=4)

    def test_invalid_word_size_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(word_size=3)

    def test_invalid_latency_rejected_via_config(self):
        with pytest.raises(ConfigError):
            MachineConfig(latency=LatencyModel(l1_hit=-1))
