"""Tracer unit tests, the golden Chrome trace, and trace determinism.

The golden file at ``tests/data/golden_trace.json`` pins the exact
Chrome ``trace_event`` bytes of a tiny fixed-seed program. If an engine
timing change legitimately shifts the trace, regenerate it with::

    PYTHONPATH=src python tests/test_obs_tracer.py
"""

import json
from pathlib import Path

import pytest

from repro.api import Session
from repro.obs import CORE_TRACK_BASE, PHASE_TRACK, PID, ObsConfig, Tracer
from repro.obs.tracer import TraceEvent
from repro.run import run_workload
from repro.workloads.micro import ArrayIncrement

GOLDEN = Path(__file__).parent / "data" / "golden_trace.json"


def tiny_program(api):
    """Two workers ping-pong on adjacent lines: a handful of accesses,
    every scheduler event kind, deterministic timing."""
    buf = yield from api.malloc(256, callsite="tiny.py:buf")

    def worker(api, base):
        yield from api.loop(base, 4, 8, read=True, write=True, work=1)

    tids = []
    for i in range(2):
        tids.append((yield from api.spawn(worker, buf + i * 64)))
    yield from api.join_all(tids)


def traced_session() -> Session:
    return Session(tiny_program,
                   obs=ObsConfig(metrics=False, trace_accesses=True))


class TestTracerUnit:
    def test_event_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        assert tracer.instant("a", "t", 0, 1)
        assert tracer.span("b", "t", 0, 5, 1)
        assert not tracer.instant("c", "t", 1, 1)
        assert len(tracer.events) == 2
        assert tracer.dropped == 1

    def test_track_names_exempt_from_cap(self):
        tracer = Tracer(max_events=0)
        tracer.name_track(3, "worker")
        assert not tracer.instant("a", "t", 0, 3)
        assert tracer.track_names[3] == "worker"

    def test_name_track_first_wins(self):
        tracer = Tracer()
        tracer.name_track(1, "first")
        tracer.name_track(1, "second")
        assert tracer.track_names[1] == "first"

    def test_span_and_instant_phases(self):
        tracer = Tracer()
        tracer.span("s", "cat", 10, 5, 2, args={"k": 1})
        tracer.instant("i", "cat", 20, 2)
        span, instant = tracer.events
        assert (span.ph, span.ts, span.dur) == ("X", 10, 5)
        assert (instant.ph, instant.dur) == ("i", None)

    def test_chrome_export_shape(self):
        tracer = Tracer()
        tracer.name_track(1, "worker")
        tracer.span("s", "cat", 0, 3, 1)
        trace = tracer.to_chrome()
        assert trace["displayTimeUnit"] == "ns"
        meta, span = trace["traceEvents"]
        assert meta["ph"] == "M" and meta["pid"] == PID
        assert meta["args"]["name"] == "worker"
        assert span["ph"] == "X" and span["dur"] == 3

    def test_chrome_export_reports_drops(self):
        tracer = Tracer(max_events=0)
        tracer.instant("a", "t", 0, 1)
        assert tracer.to_chrome()["metadata"] == {"dropped_events": 1}

    def test_jsonl_header_then_events(self):
        tracer = Tracer()
        tracer.name_track(1, "worker")
        tracer.instant("a", "t", 4, 1)
        lines = tracer.to_jsonl().splitlines()
        header = json.loads(lines[0])
        event = json.loads(lines[1])
        assert header["record"] == "meta"
        assert header["tracks"] == {"1": "worker"}
        assert event == {"record": "event", "name": "a", "cat": "t",
                         "ph": "i", "ts": 4, "track": 1, "dur": None,
                         "args": {}}


class TestObserverProtocol:
    """A bare Tracer is a valid engine Observer (the hook contract the
    ``Observer`` docstrings describe is exercised, not assumed)."""

    def test_tracer_as_engine_observer(self):
        tracer = Tracer()
        outcome = run_workload(ArrayIncrement(num_threads=2, scale=0.1),
                               observer=tracer)
        # on_access fired once per access, on every thread.
        assert sum(tracer.access_counts.values()) \
            == outcome.result.total_accesses
        # on_thread_start fired for main (tid 0) and both workers.
        assert set(tracer.track_names) == {0, 1, 2}
        assert tracer.track_names[0] == "thread 0"

    def test_on_access_returns_no_extra_cycles(self):
        assert Tracer().on_access(0, 0, 64, True, 3, 4, 1) is None


class TestTraceContent:
    @pytest.fixture(scope="class")
    def outcome(self):
        return traced_session().run()

    def test_event_catalogue(self, outcome):
        names = {e.name for e in outcome.obs.tracer.events}
        for expected in ("thread_spawn", "quantum", "join", "access",
                         "serial", "parallel"):
            assert expected in names, f"missing {expected} events"

    def test_tracks_cover_threads_cores_phases(self, outcome):
        tracks = outcome.obs.tracer.track_names
        assert tracks[0].startswith("main")
        assert tracks[PHASE_TRACK] == "phases"
        assert any(t >= CORE_TRACK_BASE and t != PHASE_TRACK
                   for t in tracks)

    def test_timestamps_bounded_by_runtime(self, outcome):
        runtime = outcome.runtime
        for event in outcome.obs.tracer.events:
            assert 0 <= event.ts <= runtime
            if event.dur is not None:
                assert event.ts + event.dur <= runtime

    def test_phase_spans_partition_runtime(self, outcome):
        spans = [e for e in outcome.obs.tracer.events if e.cat == "phase"]
        assert sum(e.dur for e in spans) == outcome.runtime


class TestDeterminism:
    def test_identical_runs_produce_identical_jsonl(self):
        first = traced_session().run().obs.tracer.to_jsonl()
        second = traced_session().run().obs.tracer.to_jsonl()
        assert first == second

    def test_golden_chrome_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        traced_session().run().obs.write_trace(str(out))
        assert out.read_text() == GOLDEN.read_text(), (
            "trace diverged from tests/data/golden_trace.json; if the "
            "timing change is intentional, regenerate it (see module "
            "docstring)")


def _regenerate() -> None:
    traced_session().run().obs.write_trace(str(GOLDEN))
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    _regenerate()
