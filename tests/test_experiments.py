"""Tests for the experiment harness at reduced scale.

These check the *structure* of each regenerated table/figure and the
directional claims (who wins); the full-scale shape checks live in the
benchmarks.
"""

import math

import pytest

from repro.experiments import (
    comparison, figure1, figure4, figure5, figure7, table1,
)
from repro.experiments.runner import format_table

SCALE = 0.2
SEED = (11,)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure1.run(scale=SCALE, seeds=SEED)

    def test_four_thread_counts(self, result):
        assert [r.threads for r in result.rows] == [1, 2, 4, 8]

    def test_single_thread_matches_expectation(self, result):
        assert result.rows[0].slowdown == pytest.approx(1.0)

    def test_reality_diverges_from_expectation(self, result):
        slowdowns = [r.slowdown for r in result.rows]
        assert slowdowns == sorted(slowdowns)  # monotonically worse
        assert result.worst_slowdown > 5.0

    def test_render(self, result):
        text = result.render()
        assert "Figure 1(b)" in text and "reality/expectation" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        # Subset for speed; the full set runs in the benchmark.
        return figure4.run(scale=SCALE, seeds=SEED,
                           names=["histogram", "swaptions", "kmeans"])

    def test_rows_and_lookup(self, result):
        assert len(result.rows) == 3
        assert result.row("kmeans").name == "kmeans"
        with pytest.raises(KeyError):
            result.row("nope")

    def test_overhead_moderate(self, result):
        for row in result.rows:
            assert 0.9 < row.normalized_runtime < 1.6

    def test_thread_heavy_app_has_higher_overhead(self):
        # At tiny scales the fixed spawn stagger masks the PMU setup
        # cost, so the kmeans-vs-others ordering is only meaningful at
        # moderate scale (the full-scale check lives in the benchmark).
        result = figure4.run(scale=0.6, seeds=SEED,
                             names=["swaptions", "kmeans"])
        assert (result.row("kmeans").normalized_runtime
                > result.row("swaptions").normalized_runtime)

    def test_render(self, result):
        assert "AVERAGE" in result.render()


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(num_threads=8, scale=0.5)

    def test_instance_detected(self, result):
        assert result.detected
        assert result.callsite == "linear_regression-pthread.c:139"

    def test_prediction_positive(self, result):
        assert result.predicted_improvement > 2.0

    def test_report_text_format(self, result):
        assert "Detecting false sharing at the object" in result.report_text
        assert "totalPossibleImprovementRate" in result.report_text

    def test_render_includes_paper_reference(self, result):
        assert "5.76x" in result.render()


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(scale=SCALE, seeds=SEED)

    def test_three_applications(self, result):
        assert [r.name for r in result.rows] == list(figure7.TRIO)

    def test_impact_negligible(self, result):
        assert result.worst_impact_percent < 3.0

    def test_cheetah_reports_nothing(self, result):
        assert not any(r.cheetah_reported for r in result.rows)

    def test_render(self, result):
        assert "Figure 7" in result.render()


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(scale=0.5, seeds=(11,),
                          applications=("linear_regression",),
                          thread_counts=(8, 4))

    def test_rows_structure(self, result):
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.application == "linear_regression"
            assert not math.isnan(row.predicted)

    def test_prediction_in_the_right_ballpark(self, result):
        # Loose per-run bound; the seed-averaged benchmark asserts ~10%.
        assert result.worst_diff_percent < 45.0

    def test_real_improvements_substantial(self, result):
        for row in result.rows:
            assert row.real > 2.0

    def test_render_includes_paper_columns(self, result):
        text = result.render()
        assert "paper(pred/real)" in text
        assert "5.56X/5.4X" in text


class TestComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return comparison.run(scale=SCALE, num_threads=16,
                              predator_min_invalidations=10)

    def test_cheetah_detects_significant_only(self, result):
        detected = {r.name for r in result.rows if r.cheetah_detected}
        assert "linear_regression" in detected
        assert detected <= {"linear_regression", "streamcluster"}

    def test_predator_detects_everything(self, result):
        assert all(r.predator_detected for r in result.rows)

    def test_overhead_ordering(self, result):
        for row in result.rows:
            assert row.cheetah_overhead < row.predator_overhead
            assert row.sheriff_overhead < row.predator_overhead

    def test_sheriff_sees_write_write_instances(self, result):
        by_name = {r.name: r for r in result.rows}
        assert by_name["linear_regression"].sheriff_detected

    def test_render(self, result):
        text = result.render()
        assert "Predator" in text and "Sheriff" in text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["xxx", 1], ["y", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a  ")
