"""The run service end to end: cache-first runs, ambient wiring, and the
Session content-hash fix.
"""

import json

import pytest

import repro.api
from repro.api import Session
from repro.errors import ServiceError
from repro.obs import ObsConfig, pop_default, push_default
from repro.run import RunOutcome, RunSummary
from repro.service import (
    JobFailure,
    RunService,
    RunSpec,
    cached_run,
    content_key,
    current_service,
    pop_service,
    push_service,
    spec_for_workload_cls,
    using_service,
)
from repro.sim.params import MachineConfig
from repro.workloads.micro import ArrayIncrement
from repro.workloads.phoenix import LinearRegression


@pytest.fixture(autouse=True)
def fresh_session_memo():
    repro.api.clear_session_memo()
    yield
    repro.api.clear_session_memo()


def _service(tmp_path, **kwargs):
    return RunService(cache_dir=tmp_path / "cache", **kwargs)


SPEC = RunSpec(workload="array_increment", threads=2, scale=0.1,
               jitter_seed=7)


class TestSpecKeys:
    def test_key_is_stable_and_content_addressed(self):
        assert SPEC.key() == RunSpec(workload="array_increment", threads=2,
                                     scale=0.1, jitter_seed=7).key()
        assert SPEC.key() != SPEC.__class__(
            workload="array_increment", threads=2, scale=0.1,
            jitter_seed=8).key()

    def test_default_machine_and_explicit_default_share_a_key(self):
        explicit = RunSpec(workload="array_increment", threads=2,
                           scale=0.1, jitter_seed=7,
                           machine=MachineConfig())
        assert explicit.key() == SPEC.key()

    def test_pmu_only_keyed_for_profiled_runs(self):
        from repro.pmu.sampler import PMUConfig
        plain = RunSpec(workload="array_increment", pmu=PMUConfig(period=8))
        assert plain.key() == RunSpec(workload="array_increment").key()
        profiled = RunSpec(workload="array_increment", with_cheetah=True,
                           pmu=PMUConfig(period=8))
        assert profiled.key() != RunSpec(workload="array_increment",
                                         with_cheetah=True).key()

    def test_spec_round_trips(self):
        again = RunSpec.from_dict(SPEC.to_dict())
        assert again == SPEC and again.key() == SPEC.key()

    def test_only_canonical_registry_classes_get_specs(self):
        assert spec_for_workload_cls(ArrayIncrement) is not None

        class Subclass(ArrayIncrement):
            pass

        assert spec_for_workload_cls(Subclass) is None
        assert spec_for_workload_cls(object) is None

    def test_workload_must_be_a_name(self):
        with pytest.raises(ServiceError):
            RunSpec(workload=ArrayIncrement)


class TestRunService:
    def test_miss_then_hit_is_byte_identical(self, tmp_path):
        service = _service(tmp_path)
        cold = service.run(SPEC)
        warm = service.run(SPEC)
        assert not cold.from_cache and warm.from_cache
        assert json.dumps(warm.to_dict(), sort_keys=True) \
            == json.dumps(cold.to_dict(), sort_keys=True)
        assert service.hit_ratio() == 0.5
        assert service.stats()["runs"] == {"executed": 1, "hit": 1}

    def test_force_reexecutes(self, tmp_path):
        service = _service(tmp_path)
        service.run(SPEC)
        assert not service.run(SPEC, force=True).from_cache

    def test_disabled_service_never_touches_store(self, tmp_path):
        service = _service(tmp_path, enabled=False)
        service.run(SPEC)
        service.run(SPEC)
        assert service.stats()["entries"] == 0
        assert service.stats()["runs"] == {"disabled": 2}

    def test_ambient_obs_default_bypasses_cache(self, tmp_path):
        service = _service(tmp_path)
        push_default(ObsConfig(trace=False))
        try:
            outcome = service.run(SPEC)
        finally:
            pop_default()
        assert outcome.obs is not None  # the run was actually observed
        assert service.stats()["entries"] == 0
        assert service.stats()["runs"] == {"bypassed": 1}

    def test_rejects_non_spec(self, tmp_path):
        with pytest.raises(ServiceError, match="RunSpec"):
            _service(tmp_path).run("array_increment")

    def test_run_many_dedupes_and_caches(self, tmp_path):
        service = _service(tmp_path)
        other = RunSpec(workload="array_increment", threads=2, scale=0.1,
                        jitter_seed=8)
        out = service.run_many([SPEC, SPEC, other])
        assert all(isinstance(o, RunOutcome) for o in out)
        assert out[0].runtime == out[1].runtime  # deduped onto one job
        assert service.stats()["entries"] == 2
        # Second call: all three served from the store.
        again = service.run_many([SPEC, SPEC, other])
        assert all(o.from_cache for o in again)
        assert [o.runtime for o in again] == [o.runtime for o in out]

    def test_run_many_degrades_to_job_failure(self, tmp_path):
        def explode(key, attempt):
            raise RuntimeError("boom")

        service = _service(tmp_path, retries=0, sleep=lambda _: None,
                           fault_hook=explode)
        out = service.run_many([SPEC])
        assert isinstance(out[0], JobFailure)
        assert out[0].kind == "exception"
        assert service.stats()["entries"] == 0  # failures are not cached


class TestCachedRun:
    def test_no_ambient_service_runs_directly(self):
        outcome = cached_run(ArrayIncrement, num_threads=2, scale=0.1,
                             jitter_seed=7)
        assert isinstance(outcome, RunOutcome) and not outcome.from_cache

    def test_ambient_service_serves_second_call(self, tmp_path):
        with using_service(_service(tmp_path)) as service:
            cold = cached_run(ArrayIncrement, num_threads=2, scale=0.1,
                              jitter_seed=7)
            warm = cached_run(ArrayIncrement, num_threads=2, scale=0.1,
                              jitter_seed=7)
        assert warm.from_cache and warm.runtime == cold.runtime
        assert service.stats()["runs"] == {"executed": 1, "hit": 1}
        assert current_service() is None  # context manager popped it

    def test_push_pop_discipline(self, tmp_path):
        with pytest.raises(ServiceError):
            pop_service()
        with pytest.raises(ServiceError):
            push_service("not a service")
        service = _service(tmp_path)
        push_service(service)
        assert current_service() is service
        assert pop_service() is service


class TestSessionContentHash:
    def test_equal_sessions_share_one_result(self):
        """Regression: result memo used to be keyed by Session identity,
        so two sessions with equal configs simulated twice. The memo is
        now keyed by the spec's content hash."""
        a = Session("array_increment", threads=2, scale=0.1,
                    jitter_seed=7).run()
        b = Session("array_increment", threads=2, scale=0.1,
                    jitter_seed=7).run()
        assert b is a

    def test_equal_configs_spelled_differently_share(self):
        a = Session("array_increment", threads=2, scale=0.1).run()
        b = Session("array_increment", threads=2, scale=0.1,
                    machine=MachineConfig()).run()
        assert b is a  # None machine ≡ explicit default machine

    def test_different_configs_do_not_share(self):
        a = Session("array_increment", threads=2, scale=0.1).run()
        b = Session("array_increment", threads=2, scale=0.1,
                    jitter_seed=99).run()
        assert b is not a

    def test_class_and_name_forms_share(self):
        a = Session("array_increment", threads=2, scale=0.1).run()
        b = Session(ArrayIncrement, threads=2, scale=0.1).run()
        assert b is a

    def test_observed_sessions_never_share(self):
        a = Session("array_increment", threads=2, scale=0.1,
                    obs=ObsConfig(trace=False)).run()
        b = Session("array_increment", threads=2, scale=0.1,
                    obs=ObsConfig(trace=False)).run()
        assert b is not a  # each observed run must actually execute

    def test_session_routes_through_ambient_service(self, tmp_path):
        with using_service(_service(tmp_path)) as service:
            Session("array_increment", threads=2, scale=0.1).run()
            out = Session("array_increment", threads=2, scale=0.1).run()
        assert out.from_cache
        assert isinstance(out.result, RunSummary)
        assert service.stats()["runs"] == {"executed": 1, "hit": 1}


class TestExperimentIntegration:
    def test_warm_scaling_experiment_is_byte_identical(self, tmp_path):
        from repro.experiments import scaling
        with using_service(_service(tmp_path)) as service:
            cold = scaling.run(scale=0.2, thread_counts=(2, 4)).render()
            warm = scaling.run(scale=0.2, thread_counts=(2, 4)).render()
        assert warm == cold
        stats = service.stats()
        assert stats["hits"] == 4 and stats["misses"] == 4

    def test_scaling_matches_uncached_baseline(self, tmp_path):
        from repro.experiments import scaling
        baseline = scaling.run(scale=0.2, thread_counts=(2,)).render()
        with using_service(_service(tmp_path)):
            cached = scaling.run(scale=0.2, thread_counts=(2,)).render()
        assert cached == baseline


class TestCacheCLI:
    def test_cache_stats_and_clear(self, tmp_path, capsys):
        from repro.cli import main
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_no_cache_flag_disables_store(self, tmp_path, capsys):
        from repro.cli import main
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--no-cache",
                     "--cache-dir", cache_dir, "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["from_cache"] is False
        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_run_json_reports_cache_hit(self, tmp_path, capsys):
        from repro.cli import main
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "array_increment", "--threads", "2",
                "--scale", "0.1", "--cache-dir", cache_dir, "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["from_cache"] is False
        assert warm["from_cache"] is True
        assert warm["runtime"] == cold["runtime"]
        assert warm["invalidations"] == cold["invalidations"]
