"""Tests for JSON export and the two-API deployment interface."""

import json

import pytest

from repro import Engine, MachineConfig, PMU, PMUConfig
from repro.core.deploy import handle_sample, setup_sampling
from repro.core.export import instance_to_dict, report_to_dict, report_to_json
from repro.heap.allocator import CheetahAllocator
from repro.pmu.sample import MemorySample
from repro.symbols.table import SymbolTable
from repro.workloads.phoenix import LinearRegression


@pytest.fixture(scope="module")
def profiled():
    wl = LinearRegression(num_threads=8)
    symbols = SymbolTable()
    wl.setup(symbols)
    engine = Engine(config=MachineConfig(), symbols=symbols,
                    pmu=PMU(PMUConfig(period=64)),
                    allocator=CheetahAllocator(line_size=64))
    profiler = setup_sampling(engine)  # API 1
    result = engine.run(wl.main)
    return profiler.finalize(result)


class TestJsonExport:
    def test_roundtrips_through_json(self, profiled):
        text = report_to_json(profiled)
        data = json.loads(text)
        assert data["tool"] == "cheetah-repro"
        assert data["runtime_cycles"] > 0

    def test_significant_instances_present(self, profiled):
        data = report_to_dict(profiled)
        assert data["significant"]
        instance = data["significant"][0]
        assert instance["kind"] == "false sharing"
        assert instance["object"]["label"] == \
            "linear_regression-pthread.c:139"

    def test_instance_fields_complete(self, profiled):
        instance = instance_to_dict(profiled.best())
        assert instance["sampled"]["accesses"] > 0
        assert instance["sampled"]["invalidations"] > 0
        assert instance["assessment"]["improvement"] > 1.0
        assert instance["assessment"]["fork_join_ok"] is True
        assert instance["words"]

    def test_word_keys_are_byte_offsets(self, profiled):
        instance = instance_to_dict(profiled.best())
        offsets = [int(k) for k in instance["words"]]
        assert all(off % 4 == 0 for off in offsets)

    def test_per_thread_breakdown_consistent(self, profiled):
        instance = instance_to_dict(profiled.best())
        sampled = instance["sampled"]
        assert (sum(sampled["per_thread_accesses"].values())
                == sampled["accesses"])


class TestDeployApi:
    def test_setup_requires_pmu(self):
        from repro.errors import ProfilerError
        with pytest.raises(ProfilerError):
            setup_sampling(Engine())

    def test_five_line_integration(self):
        # The paper's "less than 5 lines of code change" story.
        def program(api):
            buf = yield from api.malloc(64, callsite="app.c:1")
            def worker(api, addr):
                yield from api.loop(addr, 0, 1, read=True, write=True,
                                    work=2, repeat=500)
            t1 = yield from api.spawn(worker, buf)
            t2 = yield from api.spawn(worker, buf + 4)
            yield from api.join(t1)
            yield from api.join(t2)

        pmu = PMU(PMUConfig(period=16))
        engine = Engine(pmu=pmu)                        # line 1-2
        profiler = setup_sampling(engine)               # line 3
        result = engine.run(program)                    # line 4
        report = profiler.finalize(result)              # line 5
        assert report.significant

    def test_manual_sample_delivery(self):
        engine = Engine(pmu=PMU(PMUConfig()))
        profiler = setup_sampling(engine)
        heap_addr = engine.allocator.arena.base
        for i in range(50):
            tid = 1 + i % 2
            handle_sample(profiler, MemorySample(
                tid=tid, core=tid, addr=heap_addr + (tid - 1) * 4,
                is_write=True, latency=60, size=4, timestamp=i))
        assert profiler.total_samples == 50
        assert profiler.detector.samples_seen == 50
