"""Per-workload structural tests: each synthetic benchmark must keep the
properties its role in the evaluation depends on."""

import pytest

from repro.run import run_workload
from repro.workloads import get_workload
from repro.workloads.parsec import StreamCluster, X264
from repro.workloads.phoenix import KMeans, LinearRegression, PCA

TINY = 0.1


class TestLinearRegressionGeometry:
    def test_struct_size_is_papers_56_bytes(self):
        assert LinearRegression.STRUCT_SIZE == 56
        assert LinearRegression(num_threads=8).struct_stride == 56

    def test_fixed_struct_is_one_line(self):
        assert LinearRegression(num_threads=8, fixed=True).struct_stride == 64

    def test_five_accumulator_fields(self):
        # SX, SXX, SY, SYY, SXY — the fields of Figure 6.
        assert LinearRegression.FIELDS == 5

    def test_total_points_split_across_threads(self):
        for n in (2, 4, 16):
            wl = LinearRegression(num_threads=n)
            assert wl.points_per_thread == LinearRegression.TOTAL_POINTS // n

    def test_iterations_preserved_across_thread_counts(self):
        # Per-thread kernel iterations stay ~constant so runtimes are
        # comparable across the Table 1 thread sweep.
        iters = [LinearRegression(num_threads=n).points_per_thread
                 * LinearRegression(num_threads=n).repeat
                 for n in (2, 4, 8, 16)]
        assert max(iters) <= 1.1 * min(iters)

    def test_unfixed_neighbours_share_lines(self):
        out = run_workload(LinearRegression(num_threads=4, scale=TINY),
                           jitter_seed=1)
        alloc = out.result.allocator
        args = [a for a in alloc.all_allocations()
                if "139" in a.callsite][0]
        # struct 0 and struct 1 overlap in the same 64B line.
        assert (args.addr >> 6) == ((args.addr + 56) >> 6)

    def test_fixed_neighbours_do_not_share(self):
        out = run_workload(
            LinearRegression(num_threads=4, scale=TINY, fixed=True),
            jitter_seed=1)
        alloc = out.result.allocator
        args = [a for a in alloc.all_allocations()
                if "139" in a.callsite][0]
        assert (args.addr >> 6) != ((args.addr + 64) >> 6)


class TestStreamClusterGeometry:
    def test_slot_is_the_wrong_32_byte_padding(self):
        assert StreamCluster.SLOT_BYTES == 32

    def test_two_slots_per_64_byte_line(self):
        out = run_workload(StreamCluster(num_threads=4, scale=TINY),
                           jitter_seed=1)
        alloc = out.result.allocator
        work_mem = [a for a in alloc.all_allocations()
                    if "985" in a.callsite][0]
        assert (work_mem.addr >> 6) == ((work_mem.addr + 32) >> 6)

    def test_custom_fixed_stride(self):
        wl = StreamCluster(fixed=True, fixed_slot_bytes=128)
        assert wl.slot_stride == 128

    def test_updates_every_iteration(self):
        # pgain updates work_mem on every pass; the detection budget
        # depends on it.
        assert StreamCluster.UPDATE_EVERY == 1


class TestThreadHeavyStructure:
    def test_kmeans_iteration_count_gives_224_threads(self):
        assert KMeans.ITERATIONS * 16 == 224

    def test_kmeans_phase_structure(self):
        out = run_workload(KMeans(scale=TINY), jitter_seed=1)
        phases = out.result.phases
        assert len(phases.parallel_phases()) == KMeans.ITERATIONS
        # Serial centroid updates between iterations.
        assert len(phases.serial_phases()) == KMeans.ITERATIONS + 1

    def test_x264_frame_count_gives_1024_threads(self):
        assert X264.FRAMES * 16 == 1024

    def test_pca_has_two_parallel_phases(self):
        out = run_workload(PCA(num_threads=8, scale=TINY), jitter_seed=1)
        assert len(out.result.phases.parallel_phases()) == 2


class TestSharedReadOnlyWorkloads:
    @pytest.mark.parametrize("name", ["matrix_multiply", "freqmine",
                                      "bodytrack", "fluidanimate"])
    def test_shared_reads_cause_no_hot_invalidations(self, name):
        # These applications share data read-only (matrices, trees,
        # models, boundaries): sharing yes, invalidation storms no.
        out = run_workload(get_workload(name)(num_threads=8, scale=0.25),
                           jitter_seed=1)
        hot = out.result.machine.directory.lines_with_invalidations(30)
        assert hot == {}


class TestFigure7TrioStructure:
    @pytest.mark.parametrize("name,symbol", [
        ("histogram", "thread_stats"),
        ("reverse_index", "link_counts"),
        ("word_count", "word_totals"),
    ])
    def test_contested_global_is_adjacent_words(self, name, symbol):
        from repro.symbols.table import SymbolTable
        wl = get_workload(name)(num_threads=16)
        table = SymbolTable()
        wl.setup(table)
        sym = table.lookup(symbol)
        assert sym.size == 16 * 4  # adjacent 4-byte counters

    @pytest.mark.parametrize("name,symbol", [
        ("histogram", "thread_stats"),
        ("reverse_index", "link_counts"),
        ("word_count", "word_totals"),
    ])
    def test_fixed_variant_pads_counters(self, name, symbol):
        from repro.symbols.table import SymbolTable
        wl = get_workload(name)(num_threads=16, fixed=True)
        table = SymbolTable()
        wl.setup(table)
        assert table.lookup(symbol).size == 16 * 64

    @pytest.mark.parametrize("name", ["histogram", "reverse_index",
                                      "word_count"])
    def test_global_invalidations_present_but_modest(self, name):
        out = run_workload(get_workload(name)(num_threads=16, scale=0.5),
                           jitter_seed=1)
        directory = out.result.machine.directory
        symbols = out.result.symbols
        counter_invals = 0
        shift = out.result.machine.config.line_shift
        for line, count in directory.lines_with_invalidations(1).items():
            if symbols.contains(line << shift):
                counter_invals += count
        # Real (Predator-detectable) but far below linear_regression's
        # thousands.
        assert 10 < counter_invals < 600


class TestCannealDiffusion:
    def test_no_single_line_dominates(self):
        out = run_workload(get_workload("canneal")(num_threads=8,
                                                   scale=0.5),
                           jitter_seed=1)
        counts = list(out.result.machine.directory
                      .lines_with_invalidations(1).values())
        if counts:  # collisions are rare and spread out
            assert max(counts) < 30
