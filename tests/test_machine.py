"""Tests for the Machine facade: latency mapping, prefetcher, jitter,
and transfer serialization."""

import pytest

from repro.sim import coherence
from repro.sim.machine import Machine, PREFETCHED
from repro.sim.params import LatencyModel, MachineConfig


def make(jitter=0, prefetcher=False, window=0):
    return Machine(MachineConfig(), timing_jitter=jitter,
                   prefetcher=prefetcher, transfer_window=window)


class TestLatencyMapping:
    def test_cold_then_hit(self):
        m = make()
        lat = m.config.latency
        assert m.access(0, 0x100, False).latency == lat.cold
        assert m.access(0, 0x104, False).latency == lat.l1_hit

    def test_coherence_write_latency(self):
        m = make()
        m.access(0, 0x100, False)
        out = m.access(1, 0x100, True)
        assert out.kind == coherence.COHERENCE_WRITE
        assert out.latency == m.config.latency.coherence_write

    def test_outcome_line_matches_config(self):
        m = make()
        out = m.access(0, 0x12345, False)
        assert out.line == 0x12345 >> 6

    def test_is_coherence_miss_flag(self):
        m = make()
        m.access(0, 0x100, True)
        out = m.access(1, 0x100, True)
        assert out.is_coherence_miss
        cold = m.access(0, 0x4000, False)
        assert not cold.is_coherence_miss

    def test_statistics_accumulate(self):
        m = make()
        m.access(0, 0x100, False)
        m.access(0, 0x104, False)
        assert m.total_accesses == 2
        assert m.total_cycles == (m.config.latency.cold
                                  + m.config.latency.l1_hit)
        assert m.average_latency() == m.total_cycles / 2

    def test_average_latency_zero_before_accesses(self):
        assert make().average_latency() == 0.0

    def test_latency_of_exposes_cost_table(self):
        m = make()
        assert m.latency_of(coherence.HIT) == m.config.latency.l1_hit
        assert m.latency_of(PREFETCHED) == m.config.latency.prefetched


class TestPrefetcher:
    def test_sequential_stream_is_prefetched(self):
        m = make(prefetcher=True)
        lat = m.config.latency
        assert m.access(0, 0x000, False).latency == lat.cold
        # The next line follows a recently-touched line: prefetched.
        out = m.access(0, 0x040, False)
        assert out.kind == PREFETCHED
        assert out.latency == lat.prefetched
        assert m.prefetch_hits == 1

    def test_random_stride_not_prefetched(self):
        m = make(prefetcher=True)
        m.access(0, 0x0000, False)
        assert m.access(0, 0x4000, False).kind == coherence.COLD

    def test_coherence_misses_never_prefetched(self):
        # An invalidated line must be re-fetched on demand even if the
        # access pattern is sequential.
        m = make(prefetcher=True)
        m.access(0, 0x000, True)
        m.access(0, 0x040, True)
        out = m.access(1, 0x040, True)
        assert out.kind == coherence.COHERENCE_WRITE

    def test_prefetch_streams_are_per_core(self):
        m = make(prefetcher=True)
        m.access(0, 0x000, False)
        # Core 1 has no stream history at line 0: it pays the shared fetch.
        out = m.access(1, 0x040, False)
        assert out.kind == coherence.COLD


class TestTimingJitter:
    def test_zero_jitter_is_exact(self):
        m = make(jitter=0)
        m.access(0, 0x100, False)
        assert m.access(0, 0x100, False).latency == m.config.latency.l1_hit

    def test_jitter_bounded(self):
        m = Machine(MachineConfig(), timing_jitter=2, prefetcher=False)
        hit = m.config.latency.l1_hit
        m.access(0, 0x100, False)
        seen = {m.access(0, 0x100, False).latency for _ in range(200)}
        assert seen <= {hit, hit + 1, hit + 2}
        assert len(seen) > 1  # jitter actually varies

    def test_jitter_deterministic_per_seed(self):
        def latencies(seed):
            m = Machine(MachineConfig(), timing_jitter=2, jitter_seed=seed)
            m.access(0, 0x100, False)
            return [m.access(0, 0x100, False).latency for _ in range(50)]
        assert latencies(7) == latencies(7)
        assert latencies(7) != latencies(8)


class TestTransferSerialization:
    def test_racing_transfer_stalls(self):
        m = make(window=0)
        m.access(0, 0x100, True, now=0)
        first = m.access(1, 0x100, True, now=0)  # transfer completes at t=lat
        # Another steal before the first transfer completes queues behind it.
        second = m.access(0, 0x100, True, now=1)
        base = m.config.latency.coherence_write
        assert first.latency == base
        assert second.latency == base + (first.latency - 1)
        assert m.stall_cycles == first.latency - 1

    def test_no_stall_after_transfer_completes(self):
        m = make(window=0)
        m.access(0, 0x100, True, now=0)
        first = m.access(1, 0x100, True, now=0)
        out = m.access(0, 0x100, True, now=first.latency + 10)
        assert out.latency == m.config.latency.coherence_write

    def test_window_extends_pin(self):
        m = make(window=50)
        m.access(0, 0x100, True, now=0)
        first = m.access(1, 0x100, True, now=0)
        # Request lands inside the ownership window after the transfer.
        out = m.access(0, 0x100, True, now=first.latency + 10)
        assert out.latency > m.config.latency.coherence_write


class TestPinTableBounding:
    def test_prune_drops_dead_entries(self):
        m = make()
        for i in range(10):
            addr = 0x1000 + i * 64
            m.access(0, addr, True, now=0)
            m.access(1, addr, True, now=0)  # pins the line
        assert m.pinned_lines == 10
        # Entries pinned at or before the floor can never stall again.
        m.prune_pins(10_000_000)
        assert m.pinned_lines == 0

    def test_prune_keeps_live_entries(self):
        m = make()
        m.access(0, 0x100, True, now=0)
        out = m.access(1, 0x100, True, now=0)  # pinned until its latency
        m.prune_pins(0)
        assert m.pinned_lines == 1
        # Stall behaviour is unchanged for a surviving entry.
        stalled = m.access(0, 0x100, True, now=1)
        assert stalled.latency == out.latency + (out.latency - 1)

    def test_engine_run_prunes_dead_pins(self):
        from repro.sim.engine import Engine

        def worker(api, private_base):
            # Phase 1: contend on 256 shared lines (creates pins).
            yield from api.loop(0x10000, stride=64, count=256, repeat=4)
            # Phase 2: a long private stream; no coherence traffic, but
            # enough steps that the engine's periodic prune fires with a
            # clock floor far past every phase-1 pin time.
            yield from api.loop(private_base, stride=64, count=20_000,
                                repeat=1)

        def main(api):
            tids = []
            for i in range(2):
                tid = yield from api.spawn(worker, 0x1000000 * (i + 1))
                tids.append(tid)
            yield from api.join_all(tids)

        machine = Machine(MachineConfig(), timing_jitter=0)
        engine = Engine(machine=machine)
        engine.run(main)
        # Without engine-driven pruning the 256 contended lines would sit
        # in the pin table forever.
        assert machine.pinned_lines == 0


class TestAccessTupleShim:
    def test_access_wraps_access_tuple(self):
        m = make()
        out = m.access(0, 0x140, True)
        assert (out.latency, out.kind, out.line) == (
            m.config.latency.cold, coherence.COLD, 0x140 >> 6)
        latency, kind, line = m.access_tuple(0, 0x140, True)
        assert (kind, line) == (coherence.HIT, 0x140 >> 6)
        assert latency == m.config.latency.l1_hit
