"""Tests for the experiment runner helpers and the full-report driver."""

import math

import pytest

from repro.experiments import full_report
from repro.experiments.runner import (
    format_table,
    measure_overhead,
    measure_predicted_improvement,
    measure_real_improvement,
)
from repro.run import RunOutcome, run_workload
from repro.workloads.micro import ArrayIncrement
from repro.workloads.parsec import Swaptions


class TestRunWorkload:
    def test_plain_run_has_no_report(self):
        out = run_workload(ArrayIncrement(num_threads=2, scale=0.1))
        assert out.report is None
        assert out.runtime == out.result.runtime

    def test_cheetah_run_has_report(self):
        out = run_workload(ArrayIncrement(num_threads=2, scale=0.1),
                           with_cheetah=True)
        assert out.report is not None

    def test_jitter_seed_changes_runtime(self):
        a = run_workload(ArrayIncrement(num_threads=4, scale=0.2),
                         jitter_seed=1).runtime
        b = run_workload(ArrayIncrement(num_threads=4, scale=0.2),
                         jitter_seed=2).runtime
        assert a != b  # contention is jitter-sensitive


class TestMeasurements:
    def test_real_improvement_above_one_for_fs_workload(self):
        value = measure_real_improvement(
            ArrayIncrement, num_threads=8, scale=0.2, seeds=(1, 2))
        assert value > 2.0

    def test_real_improvement_about_one_for_clean_workload(self):
        value = measure_real_improvement(
            Swaptions, num_threads=8, scale=0.1, seeds=(1,))
        assert value == pytest.approx(1.0, abs=0.05)

    def test_predicted_improvement_nan_when_nothing_found(self):
        value = measure_predicted_improvement(
            Swaptions, num_threads=8, scale=0.1, seeds=(1,))
        assert math.isnan(value)

    def test_overhead_above_one(self):
        value = measure_overhead(Swaptions, num_threads=8, scale=0.1,
                                 seeds=(1,))
        assert value > 1.0


class TestFormatTable:
    def test_single_column(self):
        text = format_table(["x"], [["a"], ["bb"]])
        assert text.splitlines()[0] == "x "

    def test_numbers_stringified(self):
        text = format_table(["n"], [[1], [22]])
        assert "22" in text


@pytest.mark.slow
class TestFullReport:
    def test_all_sections_present(self):
        report = full_report.run(scale=0.05)
        titles = [title for title, _, _ in report.sections]
        assert len(titles) == len(full_report.SECTIONS)
        assert any("Table 1" in t for t in titles)
        text = report.render()
        assert "full evaluation" in text
        headers = [line for line in text.splitlines()
                   if line.startswith("### ")]
        assert len(headers) == len(titles)

    def test_progress_callback_invoked(self):
        seen = []
        full_report.run(scale=0.05, progress=seen.append)
        assert len(seen) == len(full_report.SECTIONS)
