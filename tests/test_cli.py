"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "linear_regression" in out
        assert "streamcluster" in out
        assert "significant" in out
        assert "negligible" in out


class TestRun:
    def test_run_prints_stats(self, capsys):
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "invalidations:" in out

    def test_unknown_workload_raises(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["run", "nope"])


class TestProfile:
    def test_profile_detects_fs(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32"])
        out = capsys.readouterr().out
        assert code == 0  # something significant found
        assert "Detecting false sharing" in out

    def test_profile_clean_workload_exit_code(self, capsys):
        code = main(["profile", "swaptions", "--scale", "0.15"])
        out = capsys.readouterr().out
        assert code == 1
        assert "No significant false sharing" in out

    def test_profile_fixed_layout_clean(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--fixed", "--period", "32"])
        assert code == 1

    def test_profile_json_output(self, capsys):
        import json
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["tool"] == "cheetah-repro"
        assert code == 0
        assert data["significant"]

    def test_profile_prints_padding_advice(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32"])
        out = capsys.readouterr().out
        assert "Padding advice" in out


class TestFixCheck:
    def test_fix_check_reports_both_numbers(self, capsys):
        code = main(["fix-check", "array_increment", "--threads", "8",
                     "--scale", "0.4"])
        out = capsys.readouterr().out
        assert "real improvement:" in out
        assert "Cheetah predicted:" in out


class TestCompare:
    def test_compare_three_tools(self, capsys):
        assert main(["compare", "word_count", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        for tool in ("Cheetah", "Predator", "Sheriff"):
            assert tool in out


class TestExperiment:
    def test_figure1_runs(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.1"]) == 0
        assert "Figure 1(b)" in capsys.readouterr().out

    def test_oversubscription_runs(self, capsys):
        assert main(["experiment", "oversubscription"]) == 0
        assert "Assumption 1" in capsys.readouterr().out


class TestValidate:
    def test_validate_smoke_passes(self, capsys):
        assert main(["validate", "--smoke", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "invariant suite" in out
        assert "accesses shadowed" in out
        assert "bit-identical across all execution paths" in out
        assert "parallel equivalence: skipped (--smoke)" in out
        assert "corrupted write predicate caught" in out
        assert "all checks passed" in out

    def test_validate_single_seed_triage(self, capsys):
        # The triage loop from the docs: replay exactly one fuzz program.
        assert main(["validate", "--smoke", "--seed", "49374",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "seeds 49374..49374" in out
