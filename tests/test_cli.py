"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "linear_regression" in out
        assert "streamcluster" in out
        assert "significant" in out
        assert "negligible" in out


class TestRun:
    def test_run_prints_stats(self, capsys):
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "invalidations:" in out

    def test_unknown_workload_raises(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["run", "nope"])


class TestProfile:
    def test_profile_detects_fs(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32"])
        out = capsys.readouterr().out
        assert code == 0  # something significant found
        assert "Detecting false sharing" in out

    def test_profile_clean_workload_exit_code(self, capsys):
        code = main(["profile", "swaptions", "--scale", "0.15"])
        out = capsys.readouterr().out
        assert code == 1
        assert "No significant false sharing" in out

    def test_profile_fixed_layout_clean(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--fixed", "--period", "32"])
        assert code == 1

    def test_profile_json_output(self, capsys):
        import json
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["tool"] == "cheetah-repro"
        assert code == 0
        assert data["significant"]

    def test_profile_prints_padding_advice(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32"])
        out = capsys.readouterr().out
        assert "Padding advice" in out


class TestTrace:
    def test_trace_writes_chrome_file(self, tmp_path, capsys):
        out = tmp_path / "t.trace.json"
        assert main(["trace", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "retained" in printed
        import json
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ns"
        assert any(r["ph"] == "M" for r in trace["traceEvents"])

    def test_trace_jsonl_by_suffix(self, tmp_path):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--out", str(out)]) == 0
        import json
        first = json.loads(out.read_text().splitlines()[0])
        assert first["record"] == "meta"

    def test_trace_profile_adds_pmu_events(self, tmp_path):
        out = tmp_path / "t.trace.json"
        assert main(["trace", "array_increment", "--threads", "4",
                     "--scale", "0.2", "--profile", "--out",
                     str(out)]) == 0
        import json
        names = {r["name"]
                 for r in json.loads(out.read_text())["traceEvents"]}
        assert "pmu_sample" in names

    def test_trace_max_events_caps_buffer(self, tmp_path, capsys):
        out = tmp_path / "t.trace.json"
        assert main(["trace", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--accesses", "--max-events", "5",
                     "--out", str(out)]) == 0
        assert "dropped" in capsys.readouterr().out


class TestMetrics:
    def test_metrics_prometheus_to_stdout(self, capsys):
        assert main(["metrics", "array_increment", "--threads", "2",
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sim_accesses_total counter" in out
        assert "machine_accesses_total{" in out

    def test_metrics_json_snapshot(self, capsys):
        import json
        assert main(["metrics", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--profile", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "pmu_samples_total" in snap["counters"]

    def test_metrics_to_file(self, tmp_path):
        out = tmp_path / "m.prom"
        assert main(["metrics", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--out", str(out)]) == 0
        assert "sim_runtime_cycles" in out.read_text()


class TestObsFlags:
    def test_run_with_metrics_flag(self, capsys):
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "sim_accesses_total" in out

    def test_profile_with_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "p.trace.json"
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32", "--trace",
                     str(out)])
        assert code == 0
        assert out.exists()
        assert "trace written" in capsys.readouterr().err

    def test_experiment_with_aggregated_metrics(self, tmp_path, capsys):
        import json
        out = tmp_path / "agg.json"
        assert main(["experiment", "figure1", "--scale", "0.05",
                     "--metrics", str(out)]) == 0
        agg = json.loads(out.read_text())
        assert agg["runs"] > 0
        assert agg["counters"]["sim_accesses_total"] > 0

    def test_run_with_custom_machine_flags(self, capsys):
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--line-size", "32",
                     "--cores", "4"]) == 0
        assert "runtime:" in capsys.readouterr().out


class TestFixCheck:
    def test_fix_check_reports_both_numbers(self, capsys):
        code = main(["fix-check", "array_increment", "--threads", "8",
                     "--scale", "0.4"])
        out = capsys.readouterr().out
        assert "real improvement:" in out
        assert "Cheetah predicted:" in out


class TestCompare:
    def test_compare_three_tools(self, capsys):
        assert main(["compare", "word_count", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        for tool in ("Cheetah", "Predator", "Sheriff"):
            assert tool in out


class TestExperiment:
    def test_figure1_runs(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.1"]) == 0
        assert "Figure 1(b)" in capsys.readouterr().out

    def test_oversubscription_runs(self, capsys):
        assert main(["experiment", "oversubscription"]) == 0
        assert "Assumption 1" in capsys.readouterr().out


class TestValidate:
    def test_validate_smoke_passes(self, capsys):
        assert main(["validate", "--smoke", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "invariant suite" in out
        assert "accesses shadowed" in out
        assert "bit-identical across all execution paths" in out
        assert "parallel equivalence: skipped (--smoke)" in out
        assert "corrupted write predicate caught" in out
        assert "all checks passed" in out

    def test_validate_single_seed_triage(self, capsys):
        # The triage loop from the docs: replay exactly one fuzz program.
        assert main(["validate", "--smoke", "--seed", "49374",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "seeds 49374..49374" in out
