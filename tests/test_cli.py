"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "linear_regression" in out
        assert "streamcluster" in out
        assert "significant" in out
        assert "negligible" in out


class TestRun:
    def test_run_prints_stats(self, capsys):
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "invalidations:" in out

    def test_unknown_workload_raises(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["run", "nope"])


class TestProfile:
    def test_profile_detects_fs(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32"])
        out = capsys.readouterr().out
        assert code == 0  # something significant found
        assert "Detecting false sharing" in out

    def test_profile_clean_workload_exit_code(self, capsys):
        code = main(["profile", "swaptions", "--scale", "0.15"])
        out = capsys.readouterr().out
        assert code == 1
        assert "No significant false sharing" in out

    def test_profile_fixed_layout_clean(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--fixed", "--period", "32"])
        assert code == 1

    def test_profile_json_output(self, capsys):
        import json
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["tool"] == "cheetah-repro"
        assert code == 0
        assert data["significant"]

    def test_profile_prints_padding_advice(self, capsys):
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32"])
        out = capsys.readouterr().out
        assert "Padding advice" in out


class TestTrace:
    def test_trace_writes_chrome_file(self, tmp_path, capsys):
        out = tmp_path / "t.trace.json"
        assert main(["trace", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "retained" in printed
        import json
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ns"
        assert any(r["ph"] == "M" for r in trace["traceEvents"])

    def test_trace_jsonl_by_suffix(self, tmp_path):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--out", str(out)]) == 0
        import json
        first = json.loads(out.read_text().splitlines()[0])
        assert first["record"] == "meta"

    def test_trace_profile_adds_pmu_events(self, tmp_path):
        out = tmp_path / "t.trace.json"
        assert main(["trace", "array_increment", "--threads", "4",
                     "--scale", "0.2", "--profile", "--out",
                     str(out)]) == 0
        import json
        names = {r["name"]
                 for r in json.loads(out.read_text())["traceEvents"]}
        assert "pmu_sample" in names

    def test_trace_max_events_caps_buffer(self, tmp_path, capsys):
        out = tmp_path / "t.trace.json"
        assert main(["trace", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--accesses", "--max-events", "5",
                     "--out", str(out)]) == 0
        assert "dropped" in capsys.readouterr().out


class TestMetrics:
    def test_metrics_prometheus_to_stdout(self, capsys):
        assert main(["metrics", "array_increment", "--threads", "2",
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sim_accesses_total counter" in out
        assert "machine_accesses_total{" in out

    def test_metrics_json_snapshot(self, capsys):
        import json
        assert main(["metrics", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--profile", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "pmu_samples_total" in snap["counters"]

    def test_metrics_to_file(self, tmp_path):
        out = tmp_path / "m.prom"
        assert main(["metrics", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--out", str(out)]) == 0
        assert "sim_runtime_cycles" in out.read_text()


class TestObsFlags:
    def test_run_with_metrics_flag(self, capsys):
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "sim_accesses_total" in out

    def test_profile_with_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "p.trace.json"
        code = main(["profile", "array_increment", "--threads", "8",
                     "--scale", "0.4", "--period", "32", "--trace",
                     str(out)])
        assert code == 0
        assert out.exists()
        assert "trace written" in capsys.readouterr().err

    def test_experiment_with_aggregated_metrics(self, tmp_path, capsys):
        import json
        out = tmp_path / "agg.json"
        assert main(["experiment", "figure1", "--scale", "0.05",
                     "--metrics", str(out)]) == 0
        agg = json.loads(out.read_text())
        assert agg["runs"] > 0
        assert agg["counters"]["sim_accesses_total"] > 0

    def test_run_with_custom_machine_flags(self, capsys):
        assert main(["run", "array_increment", "--threads", "2",
                     "--scale", "0.1", "--line-size", "32",
                     "--cores", "4"]) == 0
        assert "runtime:" in capsys.readouterr().out


class TestFixCheck:
    def test_fix_check_reports_both_numbers(self, capsys):
        code = main(["fix-check", "array_increment", "--threads", "8",
                     "--scale", "0.4"])
        out = capsys.readouterr().out
        assert "real improvement:" in out
        assert "Cheetah predicted:" in out


class TestCompare:
    def test_compare_three_tools(self, capsys):
        assert main(["compare", "word_count", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        for tool in ("Cheetah", "Predator", "Sheriff"):
            assert tool in out


class TestExperiment:
    def test_figure1_runs(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.1"]) == 0
        assert "Figure 1(b)" in capsys.readouterr().out

    def test_oversubscription_runs(self, capsys):
        assert main(["experiment", "oversubscription"]) == 0
        assert "Assumption 1" in capsys.readouterr().out


class TestValidate:
    def test_validate_smoke_passes(self, capsys):
        assert main(["validate", "--smoke", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "invariant suite" in out
        assert "accesses shadowed" in out
        assert "bit-identical across all execution paths" in out
        assert "parallel equivalence: skipped (--smoke)" in out
        assert "corrupted write predicate caught" in out
        assert "all checks passed" in out

    def test_validate_single_seed_triage(self, capsys):
        # The triage loop from the docs: replay exactly one fuzz program.
        assert main(["validate", "--smoke", "--seed", "49374",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "seeds 49374..49374" in out


class TestWorkloadsCommand:
    def test_list_all(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        assert "producer_consumer_ring" in out
        assert "false sharing (significant)" in out
        assert "true sharing" in out

    def test_suite_filter(self, capsys):
        assert main(["workloads", "list", "--suite", "concurrent"]) == 0
        out = capsys.readouterr().out
        assert "cas_retry_queue" in out
        assert "linear_regression" not in out

    def test_family_and_verdict_filters_json(self, capsys):
        import json as json_mod
        assert main(["workloads", "list", "--family", "numa",
                     "--json"]) == 0
        rows = json_mod.loads(capsys.readouterr().out)
        assert [r["name"] for r in rows] == ["numa_ping_pong"]
        assert rows[0]["ground_truth"]["verdict"] == "false sharing"
        assert rows[0]["machine_defaults"]["numa_nodes"] == 2
        assert "scale" in rows[0]["parameters"]

    def test_significant_filter(self, capsys):
        import json as json_mod
        assert main(["workloads", "list", "--verdict", "false_sharing",
                     "--significant", "--json"]) == 0
        rows = json_mod.loads(capsys.readouterr().out)
        names = [r["name"] for r in rows]
        assert "linear_regression" in names
        assert "histogram" not in names


class TestRecordReplay:
    def test_record_then_replay_matches_live(self, tmp_path, capsys):
        trace = str(tmp_path / "pc.trace.gz")
        assert main(["record", "producer_consumer_ring", "--scale", "0.4",
                     "--out", trace]) == 0
        out = capsys.readouterr().out
        assert "live verdict:  false sharing" in out
        code = main(["replay", trace,
                     "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0  # false sharing found
        assert "verdict:        false sharing" in out
        assert "matches replay" in out

    def test_replay_warm_cache_same_verdict(self, tmp_path, capsys):
        import json as json_mod
        trace = str(tmp_path / "ws.trace")
        assert main(["record", "work_stealing_deque", "--scale", "0.4",
                     "--out", trace, "--json"]) == 0
        capsys.readouterr()
        cache = str(tmp_path / "cache")
        assert main(["replay", trace, "--cache-dir", cache,
                     "--json"]) == 0
        cold = json_mod.loads(capsys.readouterr().out)
        assert main(["replay", trace, "--cache-dir", cache,
                     "--json"]) == 0
        warm = json_mod.loads(capsys.readouterr().out)
        assert cold["from_cache"] is False
        assert warm["from_cache"] is True
        assert warm["verdict"] == cold["verdict"] == "false sharing"
        assert warm["objects"] == cold["objects"]

    def test_replay_period_downsamples(self, tmp_path, capsys):
        import json as json_mod
        trace = str(tmp_path / "pc.trace")
        assert main(["record", "producer_consumer_ring", "--scale", "0.4",
                     "--out", trace, "--json"]) == 0
        capsys.readouterr()
        assert main(["replay", trace, "--no-cache", "--period", "8",
                     "--json"]) == 0
        data = json_mod.loads(capsys.readouterr().out)
        assert data["replayed_samples"] < data["trace_records"]

    def test_record_no_profile_replay_still_works(self, tmp_path, capsys):
        import json as json_mod
        trace = str(tmp_path / "cq.trace")
        assert main(["record", "cas_retry_queue", "--scale", "0.3",
                     "--out", trace, "--no-profile", "--json"]) == 0
        rec = json_mod.loads(capsys.readouterr().out)
        assert rec["live_verdict"] is None
        assert main(["replay", trace, "--no-cache", "--json"]) == 1
        data = json_mod.loads(capsys.readouterr().out)
        assert data["verdict"] == "true sharing"


class TestNumaFlags:
    def test_numa_flags_slow_run(self, capsys):
        import json as json_mod
        assert main(["run", "numa_ping_pong", "--scale", "0.2",
                     "--no-cache", "--json"]) == 0
        base = json_mod.loads(capsys.readouterr().out)
        assert main(["run", "numa_ping_pong", "--scale", "0.2",
                     "--no-cache", "--json", "--numa-nodes", "2",
                     "--remote-fetch-penalty", "60",
                     "--remote-transfer-penalty", "40"]) == 0
        numa = json_mod.loads(capsys.readouterr().out)
        assert numa["runtime"] > base["runtime"]


class TestDetectionExperiment:
    def test_detection_table_renders(self, capsys):
        assert main(["experiment", "detection", "--scale", "0.4",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Detection table" in out
        assert "producer_consumer_ring" in out
        assert "MISMATCH" not in out
