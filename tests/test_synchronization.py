"""Tests for the synchronisation-limitation study and the extended
(future-work) assessment model."""

import pytest

from repro.core.assessment import (
    AssessmentConfig, ThreadObservation, assess_object,
)
from repro.core.detection import ObjectProfile
from repro.experiments import synchronization
from repro.runtime.phases import PhaseTracker


class TestExtendedModelUnit:
    def _assess(self, extended, runtime=10_000, waits=0, overhead=0,
                sampled_cycles=100, sampled_on_o=90, accesses_on_o=30,
                period=10.0):
        p = ObjectProfile(key=("heap", 1), kind="heap", start=0, end=64,
                          size=64, label="x.c:1")
        p.per_tid_cycles = {1: sampled_on_o}
        p.per_tid_accesses = {1: accesses_on_o}
        obs = {1: ThreadObservation(tid=1, runtime=runtime, accesses=40,
                                    cycles=sampled_cycles,
                                    barrier_waits=waits,
                                    profiler_overhead=overhead)}
        t = PhaseTracker()
        t.on_spawn(0, 1, now=0)
        t.on_join(0, 1, now=runtime)
        t.finish(runtime)
        cfg = AssessmentConfig(model_sync_and_compute=extended)
        return assess_object(p, obs, t, aver_nofs=2.0, config=cfg,
                             sampling_period=period)

    def test_extension_off_matches_eq3(self):
        a = self._assess(extended=False)
        # EQ3: (100 - 90 + 2*30)/100 * 10000 = 7000.
        assert a.pred_rt_per_thread[1] == pytest.approx(7000.0)

    def test_extension_decomposes_runtime(self):
        a = self._assess(extended=True)
        # mem = 100*10 = 1000; compute = 10000 - 1000 = 9000;
        # pred_mem = (100-90+60)*10 = 700 -> 9700.
        assert a.pred_rt_per_thread[1] == pytest.approx(9700.0)

    def test_extension_excludes_barrier_waits(self):
        a = self._assess(extended=True, waits=4000)
        # compute = 10000 - 4000 - 1000 = 5000 -> 5000 + 700.
        assert a.pred_rt_per_thread[1] == pytest.approx(5700.0)

    def test_extension_subtracts_profiler_overhead(self):
        a = self._assess(extended=True, overhead=2000)
        assert a.pred_rt_per_thread[1] == pytest.approx(7700.0)

    def test_extension_requires_period(self):
        a_no_period = None
        p = ObjectProfile(key=("heap", 1), kind="heap", start=0, end=64,
                          size=64, label="x.c:1")
        p.per_tid_cycles = {1: 90}
        p.per_tid_accesses = {1: 30}
        obs = {1: ThreadObservation(tid=1, runtime=10_000, accesses=40,
                                    cycles=100)}
        t = PhaseTracker()
        t.finish(10_000)
        cfg = AssessmentConfig(model_sync_and_compute=True)
        a = assess_object(p, obs, t, aver_nofs=2.0, config=cfg,
                          sampling_period=None)
        # Falls back to EQ3 silently without a period.
        assert a.pred_rt_per_thread[1] == pytest.approx(7000.0)

    def test_compute_clamped_non_negative(self):
        # Estimated memory exceeding runtime must not go negative.
        a = self._assess(extended=True, runtime=500, sampled_cycles=100,
                         period=10.0)
        assert a.pred_rt_per_thread[1] >= 0


class TestSyncExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return synchronization.run(imbalances=(0, 8000))

    def test_wait_fraction_grows_with_imbalance(self, result):
        assert result.rows[0].wait_fraction < result.rows[1].wait_fraction

    def test_paper_model_fails_under_sync_domination(self, result):
        # The documented limitation: EQ3's error explodes.
        assert abs(result.rows[1].error_percent) > 100

    def test_extended_model_fixes_that_regime(self, result):
        worst = result.rows[1]
        assert (abs(worst.extended_error_percent)
                < abs(worst.error_percent) / 3)

    def test_real_improvement_shrinks_with_imbalance(self, result):
        # Amdahl: the imbalanced thread's compute dominates both runs.
        assert result.rows[1].real_improvement < \
            result.rows[0].real_improvement

    def test_render(self, result):
        text = result.render()
        assert "future work" in text
        assert "extended model" in text
