"""Tests for the Sheriff-style page-protection baseline."""

import pytest

from repro.baselines.sheriff import SheriffDetector
from repro.heap.allocator import CheetahAllocator
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable


def run_with_sheriff(program, jitter_seed=3, **kwargs):
    config = MachineConfig()
    sheriff = SheriffDetector(**kwargs)
    engine = Engine(config=config,
                    machine=Machine(config, jitter_seed=jitter_seed),
                    observer=sheriff, symbols=SymbolTable(),
                    allocator=CheetahAllocator(line_size=64))
    result = engine.run(program)
    return result, sheriff, engine


def ww_fs_program(api):
    """Write-write false sharing: two threads store to adjacent words."""
    buf = yield from api.malloc(64, callsite="ww.c:1")
    def worker(api, addr):
        yield from api.loop(addr, 0, 1, read=False, write=True, work=3,
                            repeat=400)
    t1 = yield from api.spawn(worker, buf)
    t2 = yield from api.spawn(worker, buf + 4)
    yield from api.join(t1)
    yield from api.join(t2)


def rw_fs_program(api):
    """Read-write false sharing: one thread writes, one only reads an
    adjacent word. Invisible to Sheriff (writes only)."""
    buf = yield from api.malloc(64, callsite="rw.c:1")
    def writer(api):
        yield from api.loop(buf, 0, 1, read=False, write=True, work=3,
                            repeat=400)
    def reader(api):
        yield from api.loop(buf + 4, 0, 1, read=True, write=False, work=3,
                            repeat=400)
    t1 = yield from api.spawn(writer)
    t2 = yield from api.spawn(reader)
    yield from api.join(t1)
    yield from api.join(t2)


class TestDetection:
    def test_write_write_false_sharing_found(self):
        result, sheriff, engine = run_with_sheriff(ww_fs_program,
                                                   min_writes=100)
        findings = sheriff.false_sharing_findings(engine.allocator,
                                                  engine.symbols)
        assert findings
        assert findings[0].label == "heap:ww.c:1"
        assert findings[0].tids == {1, 2}

    def test_read_write_false_sharing_invisible(self):
        # Sheriff's fundamental limitation (paper Section 6.1).
        result, sheriff, engine = run_with_sheriff(rw_fs_program,
                                                   min_writes=100)
        assert sheriff.false_sharing_findings(engine.allocator,
                                              engine.symbols) == []

    def test_true_sharing_not_reported_as_false(self):
        def ts_program(api):
            buf = yield from api.malloc(64, callsite="ts.c:1")
            def worker(api):
                yield from api.loop(buf, 0, 1, read=False, write=True,
                                    work=3, repeat=400)
            t1 = yield from api.spawn(worker)
            t2 = yield from api.spawn(worker)
            yield from api.join(t1)
            yield from api.join(t2)
        result, sheriff, engine = run_with_sheriff(ts_program,
                                                   min_writes=100)
        findings = sheriff.findings(engine.allocator, engine.symbols)
        assert findings and not findings[0].is_false_sharing

    def test_min_writes_threshold(self):
        result, sheriff, engine = run_with_sheriff(ww_fs_program,
                                                   min_writes=10**9)
        assert sheriff.findings() == []


class TestOverheadModel:
    def test_faults_much_rarer_than_writes(self):
        # Page-granular capture: one fault per (thread, page) per epoch.
        result, sheriff, _ = run_with_sheriff(ww_fs_program)
        assert sheriff.writes_observed == 800
        assert sheriff.faults < sheriff.writes_observed / 10

    def test_overhead_moderate_vs_predator(self):
        from repro.baselines.predator import PredatorDetector
        config = MachineConfig()
        def engine(observer=None):
            return Engine(config=config,
                          machine=Machine(config, jitter_seed=3),
                          observer=observer, symbols=SymbolTable(),
                          allocator=CheetahAllocator(line_size=64))
        def program(api):
            buf = yield from api.malloc(8192, callsite="w.c:1")
            def worker(api, base):
                yield from api.loop(base, 4, 256, read=True, write=True,
                                    work=2, repeat=6)
            t1 = yield from api.spawn(worker, buf)
            t2 = yield from api.spawn(worker, buf + 4096)
            yield from api.join(t1)
            yield from api.join(t2)
        native = engine().run(program).runtime
        sheriff_rt = engine(SheriffDetector()).run(program).runtime
        predator_rt = engine(PredatorDetector()).run(program).runtime
        sheriff_overhead = sheriff_rt / native
        predator_overhead = predator_rt / native
        # Sheriff sits well below full instrumentation (paper: ~20% vs ~6x).
        assert sheriff_overhead < 1.6
        assert predator_overhead > 2.0
        assert sheriff_overhead < predator_overhead

    def test_epoch_reset_refaults(self):
        sheriff = SheriffDetector(epoch_cycles=100, fault_cost=10)
        # Two writes in one epoch: one fault; after the epoch rolls over
        # (clock hint advances past 100 cycles), the page faults again.
        assert sheriff.on_access(1, 0, 0x1000, True, 50, 4, 0) == 10
        assert sheriff.on_access(1, 0, 0x1004, True, 30, 4, 0) is None
        assert sheriff.on_access(1, 0, 0x1008, True, 60, 4, 0) == 10
        assert sheriff.faults == 2

    def test_reads_are_free_and_invisible(self):
        sheriff = SheriffDetector()
        assert sheriff.on_access(1, 0, 0x1000, False, 3, 4, 0) is None
        assert sheriff.writes_observed == 0
