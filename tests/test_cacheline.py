"""Tests for the two-entry table and word-level shadow state — the exact
rules of paper Sections 2.3 and 2.4."""

import pytest

from repro.core.cacheline import DetailedLine, TwoEntryTable, WordInfo


class TestTwoEntryTableReads:
    def test_read_recorded_when_empty(self):
        table = TwoEntryTable()
        table.record_read(1)
        assert table.entries == [(1, False)]

    def test_read_from_same_thread_not_duplicated(self):
        table = TwoEntryTable()
        table.record_read(1)
        table.record_read(1)
        assert len(table) == 1

    def test_read_from_second_thread_recorded(self):
        table = TwoEntryTable()
        table.record_read(1)
        table.record_read(2)
        assert table.tids == [1, 2]

    def test_read_ignored_when_full(self):
        table = TwoEntryTable()
        table.record_read(1)
        table.record_read(2)
        table.record_read(3)
        assert table.tids == [1, 2]

    def test_read_ignored_when_same_thread_has_write_entry(self):
        table = TwoEntryTable()
        assert not table.record_write(1)
        table.record_read(1)
        assert table.entries == [(1, True)]


class TestTwoEntryTableWrites:
    def test_first_write_on_empty_table_no_invalidation(self):
        # There is no other cached copy to invalidate.
        table = TwoEntryTable()
        assert table.record_write(1) is False
        assert table.entries == [(1, True)]

    def test_write_after_own_entry_skipped(self):
        # "If this write access is from the same thread as the existing
        # entry, Cheetah skips the current write access."
        table = TwoEntryTable()
        table.record_read(1)
        assert table.record_write(1) is False
        assert table.entries == [(1, False)]  # entry not even updated

    def test_write_after_other_thread_entry_invalidates(self):
        table = TwoEntryTable()
        table.record_read(1)
        assert table.record_write(2) is True
        # Table flushed, write recorded: never empty afterwards.
        assert table.entries == [(2, True)]

    def test_write_on_full_table_invalidates(self):
        # "If the table is already full ... it incurs a cache invalidation,
        # since at least one of the existing entries is from a different
        # thread."
        table = TwoEntryTable()
        table.record_read(1)
        table.record_read(2)
        assert table.record_write(1) is True
        assert table.entries == [(1, True)]

    def test_write_write_pingpong(self):
        table = TwoEntryTable()
        table.record_write(1)
        invalidations = sum(
            table.record_write(tid) for tid in (2, 1, 2, 1, 2))
        assert invalidations == 5

    def test_same_thread_write_stream_never_invalidates(self):
        table = TwoEntryTable()
        assert not any(table.record_write(3) for _ in range(10))

    def test_table_never_exceeds_two_entries(self):
        table = TwoEntryTable()
        for tid in (1, 2, 3, 4, 5):
            table.record_read(tid)
            table.record_write(tid)
        assert len(table) <= 2


class TestWordInfo:
    def test_record_and_counts(self):
        info = WordInfo()
        info.record(1, False, 3)
        info.record(1, True, 55)
        info.record(2, False, 3)
        assert info.reads == {1: 1, 2: 1}
        assert info.writes == {1: 1}
        assert info.cycles == {1: 58, 2: 3}
        assert info.total_accesses == 3
        assert info.total_cycles == 61

    def test_shared_detection(self):
        info = WordInfo()
        info.record(1, True, 3)
        assert not info.is_shared
        info.record(2, False, 3)
        assert info.is_shared
        assert info.tids == {1, 2}


class TestDetailedLine:
    def test_apply_table_counts_invalidations(self):
        line = DetailedLine()
        line.apply_table(1, True)
        assert line.invalidations == 0
        line.apply_table(2, True)
        assert line.invalidations == 1

    def test_record_detail_accumulates(self):
        line = DetailedLine()
        line.record_detail(0, 1, True, 50)
        line.record_detail(0, 1, False, 3)
        line.record_detail(4, 2, True, 60)
        assert line.accesses == 3
        assert line.writes == 2
        assert line.total_latency == 113
        assert line.per_tid_accesses == {1: 2, 2: 1}
        assert line.per_tid_cycles == {1: 53, 2: 60}
        assert line.tids == {1, 2}

    def test_shared_word_accesses(self):
        line = DetailedLine()
        line.record_detail(0, 1, True, 3)  # word 0: only thread 1
        line.record_detail(4, 1, True, 3)  # word 4: threads 1 and 2
        line.record_detail(4, 2, False, 3)
        assert line.shared_word_accesses() == 2

    def test_word_summary_sorted(self):
        line = DetailedLine()
        line.record_detail(8, 1, True, 3)
        line.record_detail(0, 2, False, 3)
        summary = line.word_summary()
        assert list(summary) == [0, 8]
        assert summary[0]["tids"] == [2]
        assert summary[8]["writes"] == 1
