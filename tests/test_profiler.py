"""Tests for the end-to-end Cheetah profiler wiring."""

import pytest

from repro.core.profiler import CheetahConfig, CheetahProfiler
from repro.errors import ProfilerError
from repro.heap.allocator import CheetahAllocator
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable


def build(pmu_period=16, cheetah_config=None, jitter_seed=3):
    config = MachineConfig()
    machine = Machine(config, jitter_seed=jitter_seed)
    pmu = PMU(PMUConfig(period=pmu_period, handler_cost=10, trap_cost=2,
                        thread_setup_cost=100))
    engine = Engine(config=config, machine=machine, pmu=pmu,
                    symbols=SymbolTable(),
                    allocator=CheetahAllocator(line_size=64))
    profiler = CheetahProfiler(cheetah_config)
    profiler.attach(engine)
    return engine, profiler


def fs_program(api):
    """Two threads RMW adjacent words of one heap line."""
    buf = yield from api.malloc(64, callsite="fsprog.c:10")
    def worker(api, addr):
        yield from api.loop(addr, 0, 1, read=True, write=True, work=2,
                            repeat=800)
    t1 = yield from api.spawn(worker, buf)
    t2 = yield from api.spawn(worker, buf + 4)
    yield from api.join(t1)
    yield from api.join(t2)


def private_program(api):
    """Two threads on separate lines: no sharing at all."""
    buf = yield from api.malloc(256, callsite="private.c:5")
    def worker(api, addr):
        yield from api.loop(addr, 0, 1, read=True, write=True, work=2,
                            repeat=500)
    t1 = yield from api.spawn(worker, buf)
    t2 = yield from api.spawn(worker, buf + 128)
    yield from api.join(t1)
    yield from api.join(t2)


class TestWiring:
    def test_attach_requires_pmu(self):
        engine = Engine()
        with pytest.raises(ProfilerError):
            CheetahProfiler().attach(engine)

    def test_double_attach_rejected(self):
        engine, profiler = build()
        with pytest.raises(ProfilerError):
            profiler.attach(engine)

    def test_finalize_requires_attach(self):
        with pytest.raises(ProfilerError):
            CheetahProfiler().finalize(None)

    def test_samples_flow_to_detector(self):
        engine, profiler = build()
        result = engine.run(fs_program)
        assert profiler.total_samples > 50
        assert profiler.detector.samples_seen == profiler.total_samples \
            - profiler.filtered_samples


class TestEndToEnd:
    def test_false_sharing_detected_and_reported(self):
        engine, profiler = build()
        result = engine.run(fs_program)
        report = profiler.finalize(result)
        assert report.significant, "the planted FS instance must be found"
        best = report.best()
        assert best.profile.label == "fsprog.c:10"
        assert best.is_false_sharing
        assert best.improvement > 1.5
        assert report.fork_join_ok

    def test_report_render_contains_callsite(self):
        engine, profiler = build()
        result = engine.run(fs_program)
        report = profiler.finalize(result)
        assert "fsprog.c:10" in report.render()

    def test_private_program_reports_nothing(self):
        engine, profiler = build()
        result = engine.run(private_program)
        report = profiler.finalize(result)
        assert report.significant == []
        assert "No significant false sharing" in report.render()

    def test_true_sharing_not_in_significant(self):
        def ts_program(api):
            buf = yield from api.malloc(64, callsite="ts.c:2")
            def worker(api):
                yield from api.loop(buf, 0, 1, read=True, write=True,
                                    work=2, repeat=800)
            t1 = yield from api.spawn(worker)
            t2 = yield from api.spawn(worker)
            yield from api.join(t1)
            yield from api.join(t2)
        engine, profiler = build(
            cheetah_config=CheetahConfig(report_true_sharing=True))
        result = engine.run(ts_program)
        report = profiler.finalize(result)
        assert report.significant == []
        kinds = {r.kind.value for r in report.all_instances}
        assert kinds <= {"true sharing"}

    def test_min_improvement_filters(self):
        engine, profiler = build(
            cheetah_config=CheetahConfig(min_improvement=1e9))
        result = engine.run(fs_program)
        report = profiler.finalize(result)
        assert report.significant == []
        assert report.false_sharing_instances()  # still visible

    def test_sample_filtering_outside_heap_and_globals(self):
        def stacky(api):
            # Addresses below the globals segment: filtered out.
            yield from api.loop(0x1000, 4, 64, read=True, write=True,
                                repeat=20)
        engine, profiler = build()
        result = engine.run(stacky)
        report = profiler.finalize(result)
        assert profiler.filtered_samples > 0
        assert report.all_instances == []

    def test_serial_latencies_collected(self):
        def serial_only(api):
            buf = yield from api.malloc(4096, callsite="serial.c:1")
            yield from api.loop(buf, 4, 1024, read=True, write=True,
                                repeat=2)
        engine, profiler = build()
        result = engine.run(serial_only)
        report = profiler.finalize(result)
        assert report.serial_samples > 10
        assert report.aver_nofs_cycles > 0
