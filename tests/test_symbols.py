"""Tests for the global symbol table."""

import pytest

from repro.errors import SymbolError
from repro.symbols.table import SymbolTable


class TestDefinition:
    def test_define_returns_address_in_segment(self):
        table = SymbolTable()
        addr = table.define("counter", 4)
        assert table.contains(addr)

    def test_layout_is_sequential(self):
        table = SymbolTable(align=4)
        a = table.define("a", 4)
        b = table.define("b", 4)
        assert b == a + 4  # adjacent words: the classic globals FS hazard

    def test_alignment_respected(self):
        table = SymbolTable()
        table.define("pad", 3)
        addr = table.define("aligned", 64, align=64)
        assert addr % 64 == 0

    def test_duplicate_name_rejected(self):
        table = SymbolTable()
        table.define("x", 4)
        with pytest.raises(SymbolError):
            table.define("x", 4)

    def test_non_positive_size_rejected(self):
        with pytest.raises(SymbolError):
            SymbolTable().define("x", 0)

    def test_segment_exhaustion(self):
        table = SymbolTable(size=64)
        table.define("big", 64)
        with pytest.raises(SymbolError):
            table.define("more", 1)


class TestLookup:
    def test_lookup_by_name(self):
        table = SymbolTable()
        addr = table.define("array", 4000)
        symbol = table.lookup("array")
        assert symbol.addr == addr and symbol.size == 4000

    def test_lookup_unknown_raises(self):
        with pytest.raises(SymbolError):
            SymbolTable().lookup("nope")

    def test_find_by_address(self):
        table = SymbolTable()
        addr = table.define("array", 100)
        assert table.find(addr).name == "array"
        assert table.find(addr + 99).name == "array"
        assert table.find(addr + 100) is None

    def test_find_between_symbols(self):
        table = SymbolTable(align=64)
        a = table.define("a", 4)
        b = table.define("b", 4, align=64)
        assert table.find(a + 10) is None  # padding gap

    def test_symbols_listing_in_order(self):
        table = SymbolTable()
        table.define("one", 4)
        table.define("two", 4)
        assert [s.name for s in table.symbols()] == ["one", "two"]

    def test_contains_bounds(self):
        table = SymbolTable()
        assert not table.contains(table.base - 1)
        assert table.contains(table.base)
        assert not table.contains(table.end)

    def test_str_render(self):
        table = SymbolTable()
        table.define("x", 8)
        assert "x" in str(table.lookup("x"))
