"""Tests for the line-size sensitivity experiment."""

import pytest

from repro.experiments import linesize

SCALE = 0.4


class TestLineSizeStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return linesize.run(num_threads=8, scale=SCALE)

    def test_no_false_sharing_on_32_byte_lines(self, result):
        row32 = result.rows[0]
        assert row32.line_size == 32
        # The authors' padding is correct for 32B lines: no invalidations
        # on work_mem and no speedup from "fixing".
        assert row32.slot_invalidations < 20
        assert abs(row32.matched_fix_improvement - 1.0) < 0.02

    def test_false_sharing_grows_with_line_size(self, result):
        invals = [r.slot_invalidations for r in result.rows]
        assert invals[0] < invals[1] < invals[2]
        improvements = [r.matched_fix_improvement for r in result.rows]
        assert improvements[2] > improvements[1] > improvements[0]

    def test_64_byte_padding_insufficient_on_128_byte_lines(self, result):
        row128 = result.rows[2]
        assert (row128.padding64_improvement
                < row128.matched_fix_improvement)

    def test_predator_predicts_larger_lines(self, result):
        # Predator's virtual-line regrouping sees the 128B problem in a
        # trace captured on the 64B machine.
        assert result.predictive_detects_128

    def test_render(self, result):
        text = result.render()
        assert "32B" in text and "128B" in text
        assert "Predator predicts" in text
