"""FindingsSink: columnar segments, crash safety, cross-run queries."""

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.request import RunRequest
from repro.service.sink import COLUMNS, FindingsSink


def _row(i=0, **over):
    row = {"job_id": f"job-{i}", "key": f"k{i}", "tenant": "t",
           "workload": "histogram", "kind": "finding", "line": 100 + i,
           "hits": 10, "writes": 5}
    row.update(over)
    return row


class TestAppendFlush:
    def test_buffered_rows_are_queryable_before_flush(self, tmp_path):
        sink = FindingsSink(tmp_path)
        sink.append(_row())
        assert len(sink.query()) == 1
        assert sink.stats()["buffered_rows"] == 1

    def test_flush_seals_a_segment(self, tmp_path):
        sink = FindingsSink(tmp_path)
        sink.append(_row(0))
        sink.append(_row(1))
        name = sink.flush()
        assert name == "seg-00000000"
        assert sink.flush() is None  # empty buffer: no-op
        segment = tmp_path / "segments" / name
        assert (segment / "MANIFEST.json").is_file()
        for column in COLUMNS:
            assert (segment / f"{column}.jsonl").is_file()

    def test_columns_are_row_aligned(self, tmp_path):
        sink = FindingsSink(tmp_path)
        for i in range(5):
            sink.append(_row(i))
        name = sink.flush()
        segment = tmp_path / "segments" / name
        manifest = json.loads((segment / "MANIFEST.json").read_text())
        assert manifest["rows"] == 5
        for column in COLUMNS:
            lines = (segment / f"{column}.jsonl").read_text().splitlines()
            assert len(lines) == 5
        lines_column = [
            json.loads(line) for line in
            (segment / "line.jsonl").read_text().splitlines()]
        assert lines_column == [100, 101, 102, 103, 104]

    def test_reopen_restores_rows(self, tmp_path):
        sink = FindingsSink(tmp_path)
        for i in range(3):
            sink.append(_row(i))
        sink.flush()
        reopened = FindingsSink(tmp_path)
        assert reopened.stats()["sealed_rows"] == 3
        assert [r["line"] for r in reopened.query()] == [100, 101, 102]

    def test_auto_flush_at_segment_rows(self, tmp_path):
        sink = FindingsSink(tmp_path, segment_rows=2)
        for i in range(5):
            sink.append(_row(i))
        stats = sink.stats()
        assert stats["segments"] == 2
        assert stats["buffered_rows"] == 1

    def test_rotation_produces_ordered_segments(self, tmp_path):
        sink = FindingsSink(tmp_path)
        for i in range(4):
            sink.append(_row(i))
            sink.flush()
        names = sorted(p.name for p in (tmp_path / "segments").iterdir())
        assert names == [f"seg-{i:08d}" for i in range(4)]

    def test_unknown_column_rejected(self, tmp_path):
        sink = FindingsSink(tmp_path)
        with pytest.raises(ServiceError, match="unknown sink column"):
            sink.append({"job_id": "x", "velocity": 3})

    def test_torn_segment_is_skipped(self, tmp_path):
        sink = FindingsSink(tmp_path)
        sink.append(_row())
        sink.flush()
        # simulate a crash mid-flush: column files but no manifest
        torn = tmp_path / "segments" / "seg-00000001"
        torn.mkdir()
        (torn / "job_id.jsonl").write_text('"job-torn"\n')
        reopened = FindingsSink(tmp_path)
        assert reopened.stats()["sealed_rows"] == 1

    def test_misaligned_segment_rejected(self, tmp_path):
        sink = FindingsSink(tmp_path)
        sink.append(_row())
        name = sink.flush()
        bad = tmp_path / "segments" / name / "hits.jsonl"
        bad.write_text("1\n2\n3\n")
        with pytest.raises(ServiceError, match="corrupt sink segment"):
            FindingsSink(tmp_path)

    def test_concurrent_appends(self, tmp_path):
        sink = FindingsSink(tmp_path, segment_rows=16)

        def writer(base):
            for i in range(50):
                sink.append(_row(base * 1000 + i))

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.flush()
        assert FindingsSink(tmp_path).stats()["rows"] == 200


class TestQueries:
    def _populate(self, sink):
        sink.append(_row(0, workload="histogram", kind="instance",
                         invalidations=50, verdict="false sharing",
                         improvement=3.0, line=7))
        sink.append(_row(1, workload="histogram", kind="instance",
                         invalidations=10, verdict="true sharing",
                         improvement=1.0, line=9))
        sink.append(_row(2, workload="linear_regression", kind="instance",
                         invalidations=90, verdict="false sharing",
                         improvement=5.0, line=7))
        sink.append(_row(3, workload="histogram", kind="run", line=None,
                         runtime=1000, overhead_cycles=40))
        sink.append(_row(4, workload="histogram", kind="run", line=None,
                         runtime=1000, overhead_cycles=80, tenant="u"))
        sink.append(_row(5, workload="histogram", kind="run", line=None,
                         runtime=1000, overhead_cycles=None))

    def test_filters(self, tmp_path):
        sink = FindingsSink(tmp_path)
        self._populate(sink)
        assert len(sink.query(workload="histogram")) == 5
        assert len(sink.query(kind="instance")) == 3
        assert len(sink.query(tenant="u")) == 1
        assert len(sink.query(limit=2)) == 2

    def test_top_lines_sums_across_runs(self, tmp_path):
        sink = FindingsSink(tmp_path)
        self._populate(sink)
        top = sink.top_lines(n=2)
        assert top[0]["line"] == 7
        assert top[0]["invalidations"] == 140  # 50 + 90 across workloads
        assert top[0]["runs"] == 2
        assert top[1]["line"] == 9

    def test_verdict_counts_per_workload(self, tmp_path):
        sink = FindingsSink(tmp_path)
        self._populate(sink)
        verdicts = sink.verdict_counts()
        assert verdicts["histogram"] == {"false sharing": 1,
                                         "true sharing": 1}
        assert verdicts["linear_regression"] == {"false sharing": 1}

    def test_overhead_percentiles_skip_nulls(self, tmp_path):
        sink = FindingsSink(tmp_path)
        self._populate(sink)
        out = sink.overhead_percentiles((50.0,))
        assert out["p50"] == pytest.approx(60.0)  # median of 40, 80

    def test_overhead_percentiles_all_null(self, tmp_path):
        sink = FindingsSink(tmp_path)
        sink.append(_row(0, kind="run", overhead_cycles=None))
        assert sink.overhead_percentiles((50.0,)) == {"p50": None}


class TestRecordOutcome:
    def test_windowed_profiled_outcome_rows(self, tmp_path):
        sink = FindingsSink(tmp_path)
        request = RunRequest(workload="linear_regression", threads=4,
                             detector="windowed")
        outcome = request.execute()
        count = sink.record_outcome(outcome, job_id="j1", key="k1",
                                    workload=request.workload, tenant="t1")
        stats = sink.stats()
        assert count == stats["rows"]
        assert stats["kinds"]["run"] == 1
        assert stats["kinds"]["finding"] == len(outcome.streaming_findings)
        assert stats["kinds"]["instance"] >= 1
        run_row = sink.query(kind="run")[0]
        assert run_row["runtime"] == outcome.runtime
        assert run_row["invalidations"] == outcome.invalidations
        assert run_row["overhead_cycles"] > 0  # live PMU rode along

    def test_cached_outcome_rows_match_fresh(self, tmp_path):
        from repro.run import RunOutcome
        request = RunRequest(workload="linear_regression", threads=4,
                             detector="windowed")
        fresh = request.execute()
        cached = RunOutcome.from_dict(fresh.to_dict())
        fresh_sink = FindingsSink(tmp_path / "fresh")
        cached_sink = FindingsSink(tmp_path / "cached")
        fresh_sink.record_outcome(fresh, job_id="j", key="k",
                                  workload=request.workload)
        cached_sink.record_outcome(cached, job_id="j", key="k",
                                   workload=request.workload)
        fresh_rows = fresh_sink.query(kind="finding")
        cached_rows = cached_sink.query(kind="finding")
        assert fresh_rows == cached_rows
        # overhead is only known for the live run; the cached row is null
        assert cached_sink.query(kind="run")[0]["overhead_cycles"] is None

    def test_native_outcome_single_run_row(self, tmp_path):
        sink = FindingsSink(tmp_path)
        outcome = RunRequest(workload="histogram", threads=2,
                             scale=0.2).execute()
        count = sink.record_outcome(outcome, job_id="j", key="k",
                                    workload="histogram")
        assert count == 1
        assert sink.stats()["kinds"] == {"run": 1}
