"""Tests for the NUMA remote-latency model (MachineConfig knobs,
machine penalty path, sanitizer mirroring, request plumbing)."""

import pytest

from repro.errors import ConfigError
from repro.request import RunRequest
from repro.run import run_workload
from repro.sim.params import MachineConfig
from repro.workloads import get_workload

NUMA = dict(numa_nodes=2, remote_fetch_penalty=60,
            remote_transfer_penalty=40)


class TestConfig:
    def test_defaults_are_single_node(self):
        config = MachineConfig()
        assert config.numa_nodes == 1
        assert config.remote_fetch_penalty == 0
        assert config.remote_transfer_penalty == 0

    def test_node_and_home_striping(self):
        config = MachineConfig(numa_nodes=4)
        assert [config.node_of(c) for c in range(5)] == [0, 1, 2, 3, 0]
        assert config.home_node(7) == 3

    def test_nodes_must_be_positive(self):
        with pytest.raises(ConfigError):
            MachineConfig(numa_nodes=0)

    def test_nodes_capped_by_cores(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cores=4, numa_nodes=8)

    def test_penalties_non_negative(self):
        with pytest.raises(ConfigError):
            MachineConfig(numa_nodes=2, remote_fetch_penalty=-1)
        with pytest.raises(ConfigError):
            MachineConfig(numa_nodes=2, remote_transfer_penalty=-1)


class TestMachineBehaviour:
    def test_zero_penalties_bit_identical_to_single_node(self):
        cls = get_workload("producer_consumer_ring")
        base = run_workload(cls(scale=0.3), jitter_seed=1)
        striped = run_workload(
            cls(scale=0.3), jitter_seed=1,
            machine_config=MachineConfig(numa_nodes=2))
        assert striped.runtime == base.runtime
        assert (striped.result.machine.directory.total_invalidations()
                == base.result.machine.directory.total_invalidations())

    def test_penalties_slow_cross_node_sharing(self):
        cls = get_workload("numa_ping_pong")
        local = run_workload(cls(scale=0.3), jitter_seed=1)
        remote = run_workload(cls(scale=0.3), jitter_seed=1,
                              machine_config=MachineConfig(**NUMA))
        assert remote.runtime > local.runtime
        assert remote.result.machine.numa_penalty_cycles > 0

    def test_penalty_counter_zero_when_off(self):
        cls = get_workload("numa_ping_pong")
        out = run_workload(cls(scale=0.3), jitter_seed=1)
        assert out.result.machine.numa_penalty_cycles == 0

    def test_sanitized_numa_run_passes(self):
        # The sanitizer reconstructs latency independently (oracle-sourced
        # previous owner), so a penalty mismatch would raise.
        cls = get_workload("numa_ping_pong")
        out = run_workload(cls(scale=0.2), jitter_seed=1,
                           machine_config=MachineConfig(**NUMA), check=True)
        assert out.runtime > 0

    def test_sanitized_numa_fork_join_passes(self):
        cls = get_workload("linear_regression")
        config = MachineConfig(numa_nodes=4, remote_fetch_penalty=50,
                               remote_transfer_penalty=30)
        out = run_workload(cls(num_threads=4, scale=0.1), jitter_seed=1,
                           machine_config=config, check=True)
        assert out.runtime > 0

    def test_vector_kernel_parity_under_numa(self):
        cls = get_workload("numa_ping_pong")
        fused = run_workload(
            cls(scale=0.3), jitter_seed=1,
            machine_config=MachineConfig(kernel="fused", **NUMA))
        vector = run_workload(
            cls(scale=0.3), jitter_seed=1,
            machine_config=MachineConfig(kernel="vector", **NUMA))
        assert fused.runtime == vector.runtime


class TestRequestPlumbing:
    def test_numa_knobs_reach_machine_config(self):
        request = RunRequest(workload="numa_ping_pong", **NUMA)
        machine = request.machine_config()
        assert machine.numa_nodes == 2
        assert machine.remote_fetch_penalty == 60
        assert machine.remote_transfer_penalty == 40

    def test_default_request_stays_none(self):
        assert RunRequest(workload="kmeans").machine_config() is None

    def test_invalid_knobs_rejected_at_request(self):
        with pytest.raises(ConfigError):
            RunRequest(workload="kmeans", numa_nodes=0)
        with pytest.raises(ConfigError):
            RunRequest(workload="kmeans", remote_fetch_penalty=-5)

    def test_request_round_trips_numa(self):
        request = RunRequest(workload="numa_ping_pong", **NUMA)
        assert RunRequest.from_dict(request.to_dict()) == request

    def test_workload_machine_defaults_declared(self):
        cls = get_workload("numa_ping_pong")
        machine = MachineConfig(**cls.machine_defaults)
        assert machine.numa_nodes == 2
        assert machine.remote_transfer_penalty > 0
