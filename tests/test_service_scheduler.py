"""Deterministic tests for the resilient job scheduler.

Faults are injected through the scheduler's ``fault_hook`` (runs in the
worker before the cell function; raising simulates a crash) and time is
controlled by an injectable ``sleep``, so retry/backoff behavior is
asserted exactly — no real waiting, no flaky timing.
"""

import time

import pytest

from repro.errors import ServiceError
from repro.service import JobFailure, Scheduler


def _square(cell):
    return cell * cell


def _sleep_forever(cell):
    time.sleep(60)
    return cell


class _FailTimes:
    """Picklable fault hook failing the first ``n`` attempts per key."""

    def __init__(self, n):
        self.n = n

    def __call__(self, key, attempt):
        if attempt <= self.n:
            raise RuntimeError(f"injected fault on attempt {attempt}")


class TestInline:
    def test_maps_in_order(self):
        recorded = []
        sched = Scheduler(jobs=1, sleep=recorded.append)
        assert sched.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert recorded == []

    def test_dedupes_identical_cells(self):
        calls = []
        sched = Scheduler(jobs=1)

        def fn(cell):
            calls.append(cell)
            return cell * 10

        assert sched.map(fn, [5, 5, 7, 5]) == [50, 50, 70, 50]
        assert calls == [5, 7]
        snapshot = sched.registry.snapshot()["counters"]
        assert snapshot["service_scheduler_deduped_total"] == 2

    def test_explicit_keys_control_dedupe(self):
        calls = []
        sched = Scheduler(jobs=1)

        def fn(cell):
            calls.append(cell)
            return cell

        out = sched.map(fn, [1, 2], keys=["same", "same"])
        assert out == [1, 1]  # first occurrence wins, result fans out
        assert calls == [1]

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ServiceError, match="keys"):
            Scheduler(jobs=1).map(_square, [1, 2], keys=["a"])

    def test_transient_fault_heals_with_backoff(self):
        slept = []
        sched = Scheduler(jobs=1, retries=2, backoff_base=0.05,
                          backoff_factor=2.0, jitter_frac=0.0,
                          sleep=slept.append, fault_hook=_FailTimes(2))
        assert sched.map(_square, [3]) == [9]
        # Two retries, exponential schedule, no jitter: 0.05 then 0.1.
        assert slept == pytest.approx([0.05, 0.1])
        assert sched.delays == slept
        counters = sched.registry.snapshot()["counters"]
        assert counters["service_scheduler_retries_total"] == 2

    def test_backoff_is_capped_and_jittered_deterministically(self):
        a = Scheduler(jobs=1, backoff_base=1.0, backoff_factor=10.0,
                      backoff_cap=2.0, jitter_frac=0.5, jitter_seed=42)
        b = Scheduler(jobs=1, backoff_base=1.0, backoff_factor=10.0,
                      backoff_cap=2.0, jitter_frac=0.5, jitter_seed=42)
        delays_a = [a.backoff_delay(n) for n in (1, 2, 3)]
        delays_b = [b.backoff_delay(n) for n in (1, 2, 3)]
        assert delays_a == delays_b  # same seed, same schedule
        assert all(d <= 2.0 * 1.5 for d in delays_a)  # cap * max jitter
        assert delays_a[1] >= 2.0  # cap reached by attempt 2

    def test_exhausted_retries_degrade_to_job_failure(self):
        sched = Scheduler(jobs=1, retries=1, sleep=lambda _: None,
                          fault_hook=_FailTimes(99))
        out = sched.map(_square, [3, 4], keys=["bad-3", "bad-4"])
        assert all(isinstance(o, JobFailure) for o in out)
        assert out[0].key == "bad-3"
        assert out[0].kind == "exception"
        assert out[0].attempts == 2
        assert "injected fault" in out[0].error
        assert "bad-3" in out[0].render()
        counters = sched.registry.snapshot()["counters"]
        assert counters["service_scheduler_jobs_total"]["failed"] == 2

    def test_invalid_construction_rejected(self):
        with pytest.raises(ServiceError):
            Scheduler(retries=-1)
        with pytest.raises(ServiceError):
            Scheduler(timeout=0)


class TestPool:
    def test_pool_maps_in_order(self):
        sched = Scheduler(jobs=2)
        assert sched.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_pool_fault_retries_then_succeeds(self):
        # The hook travels to the worker by pickle, so its state resets
        # per attempt dispatch; attempt numbers come from the parent.
        sched = Scheduler(jobs=2, retries=2, sleep=lambda _: None,
                          fault_hook=_FailTimes(1))
        assert sched.map(_square, [5, 6]) == [25, 36]

    def test_pool_timeout_degrades_to_job_failure(self):
        sched = Scheduler(jobs=2, timeout=0.5, retries=0,
                          sleep=lambda _: None)
        out = sched.map(_sleep_forever, [1], keys=["hung"])
        assert isinstance(out[0], JobFailure)
        assert out[0].kind == "timeout"
        assert "0.5" in out[0].error
        counters = sched.registry.snapshot()["counters"]
        assert counters["service_scheduler_timeouts_total"] == 1

    def test_pool_survives_timeout_and_completes_rest(self):
        # One hung cell must not take down the others (pool recycled).
        sched = Scheduler(jobs=2, timeout=0.5, retries=0,
                          sleep=lambda _: None)
        cells = [1, "hang", 3]

        out = sched.map(_hang_on_marker, cells)
        assert out[0] == 1 and out[2] == 3
        assert isinstance(out[1], JobFailure)


def _hang_on_marker(cell):
    if cell == "hang":
        time.sleep(60)
    return cell
