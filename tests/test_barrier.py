"""Tests for barrier synchronisation."""

import pytest

from repro.errors import DeadlockError, ThreadError
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.ops import Barrier
from repro.sim.params import MachineConfig


def quiet_engine():
    return Engine(machine=Machine(MachineConfig(), timing_jitter=0))


class TestBarrierOp:
    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            Barrier("b", 0)


class TestBarrierSemantics:
    def test_threads_resume_together(self):
        arrivals = {}
        def worker(api, work, tid_key):
            yield from api.work(work)
            yield from api.barrier("sync", 2)
            arrivals[tid_key] = True
        def main(api):
            t1 = yield from api.spawn(worker, 100, "fast")
            t2 = yield from api.spawn(worker, 5000, "slow")
            yield from api.join(t1)
            yield from api.join(t2)
        result = quiet_engine().run(main)
        fast, slow = result.threads[1], result.threads[2]
        # Both leave the barrier at the same instant.
        assert fast.end_clock == slow.end_clock
        # The fast thread accounted its waiting time: the work gap plus
        # the spawn stagger between the two threads.
        expected = (slow.start_clock + 5000) - (fast.start_clock + 100)
        assert fast.barrier_waits == expected
        assert slow.barrier_waits == 0

    def test_single_party_barrier_is_cheap_noop(self):
        def main(api):
            yield from api.barrier("solo", 1)
        result = quiet_engine().run(main)
        assert result.runtime == Engine.BARRIER_COST

    def test_barrier_reusable_across_rounds(self):
        def worker(api, work):
            for _ in range(3):
                yield from api.work(work)
                yield from api.barrier("round", 2)
        def main(api):
            t1 = yield from api.spawn(worker, 10)
            t2 = yield from api.spawn(worker, 400)
            yield from api.join(t1)
            yield from api.join(t2)
        result = quiet_engine().run(main)
        fast, slow = result.threads[1], result.threads[2]
        # Round 1 includes the spawn stagger; rounds 2-3 wait the pure
        # work difference (barriers re-synchronise the clocks).
        stagger = slow.start_clock - fast.start_clock
        assert fast.barrier_waits == stagger + 390 + 390 + 390
        assert slow.barrier_waits == 0

    def test_three_party_barrier(self):
        def worker(api, work):
            yield from api.work(work)
            yield from api.barrier("tri", 3)
        def main(api):
            tids = []
            for work in (10, 200, 3000):
                tids.append((yield from api.spawn(worker, work)))
            yield from api.join_all(tids)
        result = quiet_engine().run(main)
        ends = {result.threads[t].end_clock for t in (1, 2, 3)}
        assert len(ends) == 1

    def test_missing_party_deadlocks(self):
        def worker(api):
            yield from api.barrier("forever", 3)
        def main(api):
            t1 = yield from api.spawn(worker)
            t2 = yield from api.spawn(worker)
            yield from api.join(t1)
            yield from api.join(t2)
        with pytest.raises(DeadlockError):
            quiet_engine().run(main)

    def test_double_entry_rejected(self):
        # A thread cannot wait twice at a barrier it's already in —
        # generators can't, but direct op yields could.
        def worker(api):
            yield Barrier("dup", 3)
        def main(api):
            # Build a generator that yields the same barrier twice from
            # the same thread by bypassing blocking: impossible via the
            # API, so simulate by two sequential barrier yields with
            # parties high enough never to release... the first blocks,
            # so re-entry cannot happen via the engine. Instead verify
            # the guard directly.
            yield from api.work(1)
        engine = quiet_engine()
        engine.run(main)
        # Direct guard check:
        from repro.runtime.thread import SimThread
        thread = next(iter(engine.threads.values()))
        engine._barriers["dup"] = [thread]
        with pytest.raises(ThreadError):
            engine._do_barrier(thread, Barrier("dup", 3), [])

    def test_different_keys_are_independent(self):
        def worker(api, key):
            yield from api.barrier(key, 1)
            yield from api.work(5)
        def main(api):
            t1 = yield from api.spawn(worker, "a")
            t2 = yield from api.spawn(worker, "b")
            yield from api.join(t1)
            yield from api.join(t2)
        result = quiet_engine().run(main)
        assert all(t.end_clock is not None
                   for t in result.threads.values())
