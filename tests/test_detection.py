"""Tests for the false-sharing detector: thresholds, gating, replay,
classification and object grouping."""

import pytest

from repro.core.detection import (
    DetectorConfig, FalseSharingDetector, SharingKind,
)
from repro.errors import ConfigError
from repro.heap.allocator import CheetahAllocator
from repro.pmu.sample import MemorySample
from repro.symbols.table import SymbolTable


def sample(addr, tid, is_write, latency=10):
    return MemorySample(tid=tid, core=tid, addr=addr, is_write=is_write,
                        latency=latency, size=4, timestamp=0)


def feed(detector, events, in_parallel=True):
    for addr, tid, is_write in events:
        detector.on_sample(sample(addr, tid, is_write), in_parallel)


class TestConfig:
    def test_defaults(self):
        cfg = DetectorConfig()
        assert cfg.detail_threshold_writes == 2

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            DetectorConfig(detail_threshold_writes=-1)
        with pytest.raises(ConfigError):
            DetectorConfig(min_invalidations=0)
        with pytest.raises(ConfigError):
            DetectorConfig(true_sharing_fraction=0.0)


class TestDetailThreshold:
    def test_no_detail_until_three_writes(self):
        det = FalseSharingDetector()
        feed(det, [(0x100, 1, True), (0x100, 2, True)])
        assert det.detailed_line(0x100 >> 6) is None
        feed(det, [(0x100, 1, True)])
        assert det.detailed_line(0x100 >> 6) is not None

    def test_read_only_lines_never_detailed(self):
        det = FalseSharingDetector()
        feed(det, [(0x100, tid, False) for tid in range(8)] * 10)
        assert det.detailed_line(0x100 >> 6) is None

    def test_write_counter_tracked_per_line(self):
        det = FalseSharingDetector()
        feed(det, [(0x100, 1, True), (0x140, 1, True)])
        assert det.line_writes(0x100 >> 6) == 1
        assert det.line_writes(0x140 >> 6) == 1

    def test_pending_samples_replayed_into_detail(self):
        # Samples seen before the threshold must not be lost: they carry
        # the early invalidations and latency attribution.
        det = FalseSharingDetector()
        feed(det, [(0x100, 1, True), (0x104, 2, True), (0x100, 1, True)])
        detail = det.detailed_line(0x100 >> 6)
        assert detail is not None
        # Replay applied the table rules to all three writes:
        # w1(record), w2(invalidate), w1(invalidate).
        assert detail.invalidations == 2
        assert detail.accesses == 3  # all three recorded at word level


class TestParallelPhaseGating:
    def test_serial_samples_not_recorded_in_detail(self):
        det = FalseSharingDetector()
        feed(det, [(0x100, 0, True)] * 3, in_parallel=False)
        detail = det.detailed_line(0x100 >> 6)
        assert detail is not None
        assert detail.accesses == 0  # table ran, word detail gated

    def test_main_thread_init_not_reported_as_sharing(self):
        # The scenario of Section 2.4: main initialises, children use.
        det = FalseSharingDetector()
        feed(det, [(0x100 + w * 4, 0, True) for w in range(16)] * 2,
             in_parallel=False)
        feed(det, [(0x100, 1, True), (0x104, 1, True), (0x100, 1, True)],
             in_parallel=True)
        detail = det.detailed_line(0x100 >> 6)
        assert detail.tids == {1}  # tid 0's init writes are not in words


class TestClassification:
    def _profile(self, events, allocator=None, symbols=None,
                 min_invalidations=1):
        det = FalseSharingDetector(
            DetectorConfig(min_invalidations=min_invalidations))
        feed(det, events)
        return det.build_objects(allocator or CheetahAllocator(),
                                 symbols or SymbolTable())

    def test_false_sharing_on_disjoint_words(self):
        alloc = CheetahAllocator()
        base = alloc.allocate(64, tid=0, callsite="fs.c:1")
        events = []
        for _ in range(20):
            events.append((base, 1, True))
            events.append((base + 4, 2, True))
        profiles = self._profile(events, allocator=alloc)
        assert len(profiles) == 1
        assert profiles[0].classify(0.5) is SharingKind.FALSE_SHARING

    def test_true_sharing_on_same_word(self):
        alloc = CheetahAllocator()
        base = alloc.allocate(64, tid=0, callsite="ts.c:1")
        events = [(base, tid, True) for tid in (1, 2)] * 20
        profiles = self._profile(events, allocator=alloc)
        assert profiles[0].classify(0.5) is SharingKind.TRUE_SHARING

    def test_single_thread_is_no_sharing(self):
        alloc = CheetahAllocator()
        base = alloc.allocate(64, tid=0, callsite="solo.c:1")
        events = [(base + (i % 4) * 4, 1, True) for i in range(30)]
        profiles = self._profile(events, allocator=alloc)
        assert profiles == []  # no invalidations -> not selected


class TestObjectGrouping:
    def test_heap_object_attribution(self):
        alloc = CheetahAllocator()
        base = alloc.allocate(128, tid=0, callsite="obj.c:7")
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        feed(det, [(base, 1, True), (base + 4, 2, True)] * 10)
        profiles = det.build_objects(alloc, SymbolTable())
        profile = profiles[0]
        assert profile.kind == "heap"
        assert profile.label == "obj.c:7"
        assert profile.start == base
        assert profile.size == 128

    def test_global_attribution(self):
        table = SymbolTable()
        addr = table.define("shared_counters", 64)
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        feed(det, [(addr, 1, True), (addr + 4, 2, True)] * 10)
        profiles = det.build_objects(CheetahAllocator(), table)
        assert profiles[0].kind == "global"
        assert profiles[0].label == "shared_counters"

    def test_unknown_region_attribution(self):
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        feed(det, [(0x900000, 1, True), (0x900004, 2, True)] * 10)
        profiles = det.build_objects(CheetahAllocator(), SymbolTable())
        assert profiles[0].kind == "region"

    def test_line_spanning_two_objects_splits_by_word(self):
        alloc = CheetahAllocator()
        # Two 8-byte objects from the same thread share one line.
        a = alloc.allocate(8, tid=0, callsite="a.c:1")
        b = alloc.allocate(8, tid=0, callsite="b.c:1")
        assert (a >> 6) == (b >> 6)
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        feed(det, [(a, 1, True), (b, 2, True)] * 10)
        profiles = det.build_objects(alloc, SymbolTable())
        labels = {p.label for p in profiles}
        # Invalidations attributed to the plurality owner; both objects
        # carry their own word data, and at least the owner is selected.
        assert labels <= {"a.c:1", "b.c:1"}
        assert profiles[0].accesses == 10

    def test_whole_object_statistics_aggregated(self):
        # Susceptible lines select the object; statistics cover ALL its
        # tracked lines (the Figure 5 report covers the whole object).
        alloc = CheetahAllocator()
        base = alloc.allocate(256, tid=0, callsite="wide.c:9")
        det = FalseSharingDetector(DetectorConfig(min_invalidations=5))
        # Line 0: heavy ping-pong (selected); line 2: mild traffic from a
        # third thread pair (tracked but below the threshold).
        events = [(base, 1, True), (base + 4, 2, True)] * 10
        events += [(base + 128, 3, True)] * 3 + [(base + 132, 4, True)] * 2
        feed(det, events)
        profiles = det.build_objects(alloc, SymbolTable())
        assert len(profiles) == 1
        profile = profiles[0]
        assert profile.tids == {1, 2, 3, 4}
        assert profile.accesses == 25

    def test_min_invalidations_selects_objects(self):
        alloc = CheetahAllocator()
        base = alloc.allocate(64, tid=0, callsite="cold.c:1")
        det = FalseSharingDetector(DetectorConfig(min_invalidations=50))
        feed(det, [(base, 1, True), (base + 4, 2, True)] * 5)
        assert det.build_objects(alloc, SymbolTable()) == []


class TestDetectorGeometryValidation:
    @pytest.mark.parametrize("bad", [0, -64, 48, 63])
    def test_non_power_of_two_line_size_rejected(self, bad):
        with pytest.raises(ConfigError):
            FalseSharingDetector(line_size=bad)

    @pytest.mark.parametrize("bad", [0, -4, 3, 6])
    def test_non_power_of_two_word_size_rejected(self, bad):
        with pytest.raises(ConfigError):
            FalseSharingDetector(word_size=bad)

    def test_word_size_larger_than_line_size_rejected(self):
        with pytest.raises(ConfigError):
            FalseSharingDetector(line_size=32, word_size=64)

    def test_valid_geometry_accepted(self):
        det = FalseSharingDetector(line_size=32, word_size=8)
        assert det.line_size == 32
        assert det.word_size == 8
