"""Tests for self-describing (v2) traces and full replay:
record → save/load (plain + gz) → replay through machine + detector →
same verdict as the live run."""

import pytest

from repro.errors import ConfigError
from repro.sim.params import MachineConfig
from repro.trace import (
    load_trace,
    load_trace_meta,
    record_workload,
    replay_outcome,
    save_trace,
    trace_meta,
    workload_verdict,
)
from repro.trace.storage import HEADER_V1, HEADER_V2, TraceFormatError
from repro.workloads import CONCURRENT_NAMES, get_workload

#: One workload per new family, at the fastest scale where the live
#: (sampled) verdict is stable.
FAMILY_SCALES = {
    "producer_consumer_ring": 0.4,
    "work_stealing_deque": 0.4,
    "cas_retry_queue": 0.4,
    "seqlock_read_mostly": 0.75,
    "numa_ping_pong": 0.3,
}


def record(name, scale=None):
    cls = get_workload(name)
    machine = (MachineConfig(**cls.machine_defaults)
               if cls.machine_defaults else None)
    workload = cls(scale=scale if scale is not None
                   else FAMILY_SCALES[name])
    return record_workload(workload, machine_config=machine)


class TestMetaStorage:
    def test_v1_written_without_meta(self, tmp_path):
        recorder, _ = record("producer_consumer_ring", scale=0.2)
        path = tmp_path / "run.trace"
        save_trace(recorder.records, path)
        assert path.read_text().splitlines()[0] == HEADER_V1
        assert list(load_trace(path)) == recorder.records
        assert load_trace_meta(path) is None

    @pytest.mark.parametrize("suffix", [".trace", ".trace.gz"])
    def test_v2_meta_round_trips(self, tmp_path, suffix):
        recorder, meta = record("producer_consumer_ring", scale=0.2)
        path = tmp_path / ("run" + suffix)
        written = save_trace(recorder.records, path, meta=meta)
        assert written == len(recorder.records)
        assert list(load_trace(path)) == recorder.records
        assert load_trace_meta(path) == meta

    def test_v2_header_written_with_meta(self, tmp_path):
        recorder, meta = record("cas_retry_queue", scale=0.2)
        path = tmp_path / "run.trace"
        save_trace(recorder.records, path, meta=meta)
        assert path.read_text().splitlines()[0] == HEADER_V2

    def test_meta_carries_replay_inputs(self):
        recorder, meta = record("numa_ping_pong", scale=0.2)
        assert meta["workload"]["name"] == "numa_ping_pong"
        assert meta["machine"]["numa_nodes"] == 2
        assert meta["allocations"]
        assert meta["live_verdict"] in (
            "false sharing", "true sharing", "no sharing")

    def test_malformed_meta_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(HEADER_V2 + "\n#meta {broken\n")
        with pytest.raises(TraceFormatError, match="malformed meta"):
            load_trace_meta(path)

    def test_non_object_meta_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(HEADER_V2 + "\n#meta [1, 2]\n")
        with pytest.raises(TraceFormatError, match="JSON object"):
            load_trace_meta(path)

    def test_v1_reader_skips_meta_line(self, tmp_path):
        # A v2 file is a valid record stream for any #-skipping reader.
        recorder, meta = record("work_stealing_deque", scale=0.2)
        path = tmp_path / "run.trace"
        save_trace(recorder.records, path, meta=meta)
        assert len(list(load_trace(path))) == len(recorder.records)


class TestReplayOutcome:
    @pytest.mark.parametrize("name", CONCURRENT_NAMES)
    def test_replay_verdict_equals_live_run(self, tmp_path, name):
        recorder, meta = record(name)
        path = tmp_path / f"{name}.trace.gz"
        save_trace(recorder.records, path, meta=meta)
        outcome = replay_outcome(load_trace(path), load_trace_meta(path))
        md = outcome.result.metadata
        assert md["replay"] is True
        assert md["verdict"] == meta["live_verdict"]
        assert md["trace_records"] == len(recorder.records)
        assert md["machine_invalidations"] > 0

    def test_replay_attributes_to_recorded_objects(self):
        recorder, meta = record("producer_consumer_ring")
        md = replay_outcome(recorder.records, meta).result.metadata
        labels = [o["label"] for o in md["objects"]]
        assert any("pc_cursors" in label for label in labels)

    def test_replay_without_meta_still_classifies(self):
        recorder, meta = record("producer_consumer_ring")
        md = replay_outcome(recorder.records).result.metadata
        assert md["verdict"] == "false sharing"

    def test_downsampled_replay(self):
        recorder, meta = record("producer_consumer_ring")
        md = replay_outcome(recorder.records, meta,
                            period=8).result.metadata
        assert md["replayed_samples"] < md["trace_records"]
        assert md["verdict"] == "false sharing"

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigError):
            replay_outcome([], period=0)

    def test_outcome_survives_store_round_trip(self, tmp_path):
        from repro.run import RunOutcome
        from repro.service import ResultStore
        from repro.service.spec import content_key
        recorder, meta = record("cas_retry_queue")
        outcome = replay_outcome(recorder.records, meta)
        store = ResultStore(tmp_path / "cache")
        key = content_key({"kind": "replay-test"})
        store.put(key, outcome)
        cached = store.get(key)
        assert isinstance(cached, RunOutcome)
        assert (cached.result.metadata["verdict"]
                == outcome.result.metadata["verdict"])

    def test_workload_verdict_collapse(self):
        recorder, meta = record("seqlock_read_mostly")
        assert meta["live_verdict"] == "true sharing"

    def test_trace_meta_without_report_has_no_live_verdict(self):
        from repro.run import run_workload
        from repro.trace import TraceRecorder
        cls = get_workload("cas_retry_queue")
        recorder = TraceRecorder()
        out = run_workload(cls(scale=0.2), observer=recorder)
        meta = trace_meta(cls(scale=0.2), out)
        assert "live_verdict" not in meta
