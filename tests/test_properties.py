"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.baselines.ownership import OwnershipTracker
from repro.core.cacheline import TwoEntryTable
from repro.core.detection import DetectorConfig, FalseSharingDetector
from repro.heap.allocator import CheetahAllocator
from repro.pmu.sample import MemorySample
from repro.sim.coherence import CoherenceDirectory
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig

# An access stream: (core/tid in 0..5, line-offset address, is_write).
accesses = st.lists(
    st.tuples(st.integers(0, 5),
              st.integers(0, 8).map(lambda w: 0x1000 + w * 4),
              st.booleans()),
    min_size=1, max_size=200)


class TestCoherenceInvariants:
    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_dirty_owner_always_sole_holder(self, stream):
        d = CoherenceDirectory(line_shift=6)
        for core, addr, is_write in stream:
            d.access(core, addr, is_write)
            state = d.state_of(addr >> 6)
            if state.dirty_owner is not None:
                assert state.holders == {state.dirty_owner}

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_invalidations_never_exceed_writes(self, stream):
        d = CoherenceDirectory(line_shift=6)
        writes = 0
        for core, addr, is_write in stream:
            d.access(core, addr, is_write)
            writes += is_write
        assert d.total_invalidations() <= writes

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_single_core_never_invalidates(self, stream):
        d = CoherenceDirectory(line_shift=6)
        for _, addr, is_write in stream:
            d.access(0, addr, is_write)
        assert d.total_invalidations() == 0


class TestTwoEntryTableInvariants:
    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_table_bounded_and_distinct(self, stream):
        tables = {}
        for tid, addr, is_write in stream:
            table = tables.setdefault(addr >> 6, TwoEntryTable())
            if is_write:
                table.record_write(tid)
            else:
                table.record_read(tid)
            assert len(table) <= 2
            assert len(set(table.tids)) == len(table.tids)

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_table_invalidations_bounded_by_ownership_writes(self, stream):
        """The two-entry table's invalidation count never exceeds the
        number of cross-thread write transitions plus reads recorded —
        in particular it never exceeds the total number of writes."""
        table = TwoEntryTable()
        writes = 0
        invalidations = 0
        for tid, _, is_write in stream:
            if is_write:
                writes += 1
                invalidations += table.record_write(tid)
            else:
                table.record_read(tid)
        assert invalidations <= writes

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_write_only_streams_agree_with_ownership_rule(self, tids):
        """On pure write streams the two-entry table and the Zhao et al.
        ownership rule count identically: both fire exactly on writer
        changes."""
        table = TwoEntryTable()
        owner = OwnershipTracker()
        t_inv = sum(table.record_write(tid) for tid in tids)
        o_inv = sum(owner.record(0, tid=tid, is_write=True) for tid in tids)
        assert t_inv == o_inv


class TestMachineInvariants:
    @given(accesses, st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_latency_always_positive_and_bounded(self, stream, jitter):
        m = Machine(MachineConfig(), timing_jitter=jitter)
        lat = m.config.latency
        upper = max(lat.cold, lat.coherence_write) + jitter
        now = 0
        for core, addr, is_write in stream:
            out = m.access(core, addr, is_write, now)
            assert 0 < out.latency <= upper + m.stall_cycles
            now += out.latency


class TestDetectorInvariants:
    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_recorded_never_exceeds_seen(self, stream):
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        for tid, addr, is_write in stream:
            det.on_sample(MemorySample(tid=tid, core=tid, addr=addr,
                                       is_write=is_write, latency=5,
                                       size=4, timestamp=0), True)
        assert det.samples_recorded <= det.samples_seen

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_object_accesses_conserved(self, stream):
        """Every sample recorded into a detailed line shows up in exactly
        one object profile."""
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        alloc = CheetahAllocator()
        for tid, addr, is_write in stream:
            det.on_sample(MemorySample(tid=tid, core=tid, addr=addr,
                                       is_write=is_write, latency=5,
                                       size=4, timestamp=0), True)
        profiles = det.build_objects(alloc, None)
        for p in profiles:
            assert p.accesses == sum(p.per_tid_accesses.values())
            assert p.total_latency == sum(p.per_tid_cycles.values())


class TestEngineInvariants:
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(1, 30)),
                    min_size=1, max_size=20),
           st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_random_fork_join_programs_terminate(self, ops, nthreads):
        """Random loop-shaped fork-join programs always terminate with
        monotonically consistent clocks."""
        def worker(api, base):
            for word, reps in ops:
                yield from api.loop(base + word * 4, 0, 1, read=True,
                                    write=True, repeat=reps)
        def main(api):
            buf = yield from api.malloc(256)
            tids = []
            for i in range(nthreads):
                tids.append((yield from api.spawn(worker, buf + i * 8)))
            yield from api.join_all(tids)
        engine = Engine(machine=Machine(MachineConfig(), timing_jitter=0))
        result = engine.run(main)
        for thread in result.threads.values():
            assert thread.end_clock is not None
            assert thread.end_clock >= thread.start_clock
        assert result.runtime >= max(
            t.end_clock for t in result.threads.values()) - 1
        # Phase accounting covers the whole run.
        assert result.phases.total_time() == result.runtime
