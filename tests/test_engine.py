"""Tests for the discrete-event engine: scheduling, thread lifecycle,
bursts, callsite capture and failure modes."""

import pytest

from repro.errors import DeadlockError, SimulationError, ThreadError
from repro.sim.engine import Engine, Observer
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig


def run(fn, *args, **engine_kwargs):
    engine_kwargs.setdefault(
        "machine", Machine(MachineConfig(), timing_jitter=0))
    engine = Engine(**engine_kwargs)
    return engine.run(fn, *args), engine


class TestBasicExecution:
    def test_empty_main(self):
        def main(api):
            return
            yield  # pragma: no cover
        result, _ = run(main)
        assert result.runtime == 0
        assert result.threads[0].state.value == "finished"

    def test_single_access_costs_cold_latency(self):
        def main(api):
            yield from api.load(0x100)
        result, _ = run(main)
        assert result.runtime == MachineConfig().latency.cold

    def test_work_advances_clock(self):
        def main(api):
            yield from api.work(123)
        result, _ = run(main)
        assert result.runtime == 123

    def test_update_is_load_plus_store(self):
        def main(api):
            yield from api.update(0x100)
        result, _ = run(main)
        assert result.threads[0].mem_accesses == 2

    def test_main_return_value_ignored_runtime_counted(self):
        def main(api):
            yield from api.work(5)
            yield from api.work(7)
        result, _ = run(main)
        assert result.runtime == 12
        assert result.total_instructions == 12

    def test_engine_runs_once_only(self):
        def main(api):
            yield from api.work(1)
        result, engine = run(main)
        with pytest.raises(SimulationError):
            engine.run(main)

    def test_non_generator_thread_fn_rejected(self):
        def not_a_generator(api):
            return 42
        with pytest.raises(ThreadError):
            run(not_a_generator)


class TestBurstExecution:
    def test_loop_access_counts(self):
        def main(api):
            yield from api.loop(0x1000, 4, 10, read=True, write=True,
                                repeat=3)
        result, _ = run(main)
        assert result.threads[0].mem_accesses == 60

    def test_loop_read_only(self):
        def main(api):
            yield from api.loop(0x1000, 4, 8, write=False)
        result, _ = run(main)
        assert result.threads[0].mem_accesses == 8

    def test_loop_work_charged(self):
        def main(api):
            yield from api.loop(0x1000, 0, 1, read=False, write=True,
                                work=10, repeat=5)
        result, _ = run(main)
        t = result.threads[0]
        assert t.instructions == 5 + 50  # 5 stores + 5x10 work

    def test_zero_count_loop_is_noop(self):
        def main(api):
            yield from api.loop(0x1000, 4, 0)
            yield from api.work(3)
        result, _ = run(main)
        assert result.runtime == 3

    def test_burst_equivalent_to_individual_ops(self):
        def burst(api):
            yield from api.loop(0x1000, 4, 16, read=True, write=True)
        def manual(api):
            for i in range(16):
                yield from api.load(0x1000 + i * 4)
                yield from api.store(0x1000 + i * 4)
        r1, _ = run(burst)
        r2, _ = run(manual)
        assert r1.runtime == r2.runtime
        assert r1.threads[0].mem_accesses == r2.threads[0].mem_accesses


class TestThreads:
    def test_spawn_join(self):
        def child(api, n):
            yield from api.work(n)
        def main(api):
            tid = yield from api.spawn(child, 100)
            yield from api.join(tid)
        result, _ = run(main)
        assert len(result.threads) == 2
        assert result.threads[1].runtime == 100

    def test_children_run_in_parallel(self):
        def child(api):
            yield from api.work(10_000)
        def main(api):
            tids = []
            for _ in range(4):
                tids.append((yield from api.spawn(child)))
            yield from api.join_all(tids)
        result, _ = run(main)
        cfg = MachineConfig()
        serial_floor = 4 * 10_000
        # Parallel execution: far below the serial sum.
        assert result.runtime < serial_floor
        assert result.runtime >= 10_000

    def test_spawn_returns_increasing_tids(self):
        def child(api):
            yield from api.work(1)
        def main(api):
            a = yield from api.spawn(child)
            b = yield from api.spawn(child)
            yield from api.join_all([a, b])
            assert (a, b) == (1, 2)
        run(main)

    def test_join_already_finished_thread(self):
        def child(api):
            yield from api.work(1)
        def main(api):
            tid = yield from api.spawn(child)
            yield from api.work(50_000)  # child surely finished
            yield from api.join(tid)
        result, _ = run(main)
        assert result.threads[1].state.value == "finished"

    def test_join_unknown_thread_raises(self):
        def main(api):
            yield from api.join(99)
        with pytest.raises(ThreadError):
            run(main)

    def test_join_self_raises(self):
        def main(api):
            yield from api.join(0)
        with pytest.raises(ThreadError):
            run(main)

    def test_main_exit_with_running_children_raises(self):
        def child(api):
            yield from api.work(1_000_000)
        def main(api):
            yield from api.spawn(child)
        with pytest.raises(ThreadError):
            run(main)

    def test_mutual_join_deadlocks(self):
        def child(api, other):
            yield from api.join(other)
        def main(api):
            a = yield from api.spawn(child, 2)  # joins b
            b = yield from api.spawn(child, 1)  # joins a
            yield from api.join(a)
        with pytest.raises(DeadlockError):
            run(main)

    def test_thread_core_binding(self):
        def child(api):
            yield from api.work(1)
        def main(api):
            tids = []
            for _ in range(4):
                tids.append((yield from api.spawn(child)))
            yield from api.join_all(tids)
        result, _ = run(main, config=MachineConfig(num_cores=2))
        cores = [result.threads[tid].core for tid in (1, 2, 3, 4)]
        assert cores == [1, 0, 1, 0]  # tid % num_cores

    def test_grandchild_spawn_supported(self):
        def leaf(api):
            yield from api.work(5)
        def middle(api):
            tid = yield from api.spawn(leaf)
            yield from api.join(tid)
        def main(api):
            tid = yield from api.spawn(middle)
            yield from api.join(tid)
        result, _ = run(main)
        assert len(result.threads) == 3
        assert not result.phases.fork_join_ok  # nested parallelism flagged


class TestSteppingLimits:
    def test_max_steps_guards_runaway_program(self):
        def main(api):
            while True:
                yield from api.work(1)
        engine = Engine(max_steps=1000)
        with pytest.raises(SimulationError):
            engine.run(main)


class TestMallocFree:
    def test_malloc_returns_heap_address(self):
        def main(api):
            addr = yield from api.malloc(128)
            assert addr >= 0x40000000
            yield from api.store(addr)
        run(main)

    def test_free_roundtrip(self):
        def main(api):
            addr = yield from api.malloc(64)
            yield from api.free(addr)
        result, _ = run(main)
        assert result.allocator.total_freed >= 64

    def test_callsite_captured_from_workload_frame(self):
        def main(api):
            addr = yield from api.malloc(64)
            yield from api.store(addr)
        result, _ = run(main)
        info = result.allocator.all_allocations()[0]
        assert info.callsite.startswith("test_engine.py:")

    def test_explicit_callsite_wins(self):
        def main(api):
            addr = yield from api.malloc(64, callsite="app.c:42")
            yield from api.store(addr)
        result, _ = run(main)
        assert result.allocator.all_allocations()[0].callsite == "app.c:42"


class TestObserverHook:
    def test_observer_sees_every_access_and_charges_cost(self):
        class Counting(Observer):
            cost_per_access = 10
            def __init__(self):
                self.calls = 0
            def on_access(self, *args):
                self.calls += 1
        obs = Counting()
        def main(api):
            yield from api.loop(0x1000, 4, 20, read=True, write=False)
        result, _ = run(main, observer=obs)
        assert obs.calls == 20
        plain, _ = run(main)
        assert result.runtime == plain.runtime + 20 * 10


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def child(api, base):
            yield from api.loop(base, 4, 50, read=True, write=True, work=2)
        def main(api):
            buf = yield from api.malloc(256)
            tids = []
            for i in range(4):
                tids.append((yield from api.spawn(child, buf + i * 4)))
            yield from api.join_all(tids)
        r1, _ = run(main)
        r2, _ = run(main)
        assert r1.runtime == r2.runtime
        assert (r1.machine.directory.total_invalidations()
                == r2.machine.directory.total_invalidations())
