"""Tests for adaptive PMU sampling: config validation, the controller's
tighten/backoff/rotation policy, live-period PMU semantics, the
unhandled-fire fix, overhead conservation under the sanitizer, and the
end-to-end experiment plumbing."""

import pytest

from repro.errors import ConfigError
from repro.pmu.adaptive import ROTATION_MODES, AdaptiveConfig, AdaptiveController
from repro.pmu.sampler import PMU, PMUConfig


def make_pmu(period=100, adaptive=None, jitter=0.0, **kw):
    cfg = PMUConfig(period=period, jitter=jitter,
                    adaptive=adaptive or AdaptiveConfig(), **kw)
    return PMU(cfg)


def fire_line(controller, line, count, start=0, step=10):
    """Feed ``count`` fires on one cache line, timestamps advancing."""
    for i in range(count):
        controller.on_fire(line * 64, start + i * step)


class TestConfig:
    def test_defaults_valid_and_disabled(self):
        cfg = AdaptiveConfig()
        assert not cfg.enabled
        assert cfg.min_period <= cfg.max_period

    def test_rotation_normalized_to_tuple(self):
        cfg = AdaptiveConfig(rotation=["all", "write"])
        assert cfg.rotation == ("all", "write")
        assert isinstance(cfg.rotation, tuple)

    @pytest.mark.parametrize("kw", [
        {"min_period": 0},
        {"min_period": 200, "max_period": 100},
        {"hot_line_samples": 0}, {"window": 0},
        {"evaluate_interval": 0},
        {"tighten_factor": 0.0}, {"tighten_factor": 1.5},
        {"backoff_factor": 0.5},
        {"rotation": ()}, {"rotation": ("all", "bogus")},
        {"rotate_interval": 0},
        {"line_size": 48},
    ])
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigError):
            AdaptiveConfig(**kw)

    def test_rotation_modes_cover_config(self):
        for mode in ROTATION_MODES:
            AdaptiveConfig(rotation=(mode,))


class TestController:
    def make(self, **kw):
        kw.setdefault("enabled", True)
        kw.setdefault("min_period", 25)
        kw.setdefault("max_period", 400)
        kw.setdefault("hot_line_samples", 3)
        kw.setdefault("window", 1000)
        kw.setdefault("evaluate_interval", 100)
        pmu = make_pmu(period=100, adaptive=AdaptiveConfig(**kw))
        assert pmu.controller is not None
        return pmu, pmu.controller

    def test_hot_line_tightens(self):
        pmu, ctl = self.make()
        fire_line(ctl, 5, 10)               # 10 fires by t=90, eval at t>=100
        ctl.on_fire(5 * 64, 120)
        assert pmu.period == 50             # 100 * 0.5
        assert ctl.tightenings == 1
        assert ctl.history == [(120, 50)]

    def test_tighten_floors_at_min_period(self):
        pmu, ctl = self.make()
        for round_start in (0, 200, 400, 600):
            fire_line(ctl, 5, 15, start=round_start, step=10)
        assert pmu.period == 25
        assert all(p >= 25 for _, p in ctl.history)

    def test_quiet_phase_backs_off(self):
        pmu, ctl = self.make()
        # Touch many distinct lines once each: none turns hot.
        for i in range(20):
            ctl.on_fire(i * 64 * 7, i * 10)
        assert pmu.period == 200            # 100 * 2.0
        assert ctl.backoffs >= 1

    def test_backoff_caps_at_max_period(self):
        pmu, ctl = self.make()
        for i in range(200):
            ctl.on_fire(i * 64 * 7, i * 10)
        assert pmu.period == 400
        assert all(p <= 400 for _, p in ctl.history)

    def test_idle_line_count_resets_past_window(self):
        _, ctl = self.make(window=100)
        ctl.on_fire(5 * 64, 0)
        ctl.on_fire(5 * 64, 50)             # within window: count grows
        assert ctl._hits[5][0] == 2
        ctl.on_fire(5 * 64, 500)            # past window: fresh count
        assert ctl._hits[5][0] == 1

    def test_stale_lines_pruned_at_evaluation(self):
        _, ctl = self.make(window=100, evaluate_interval=10_000)
        ctl.on_fire(5 * 64, 0)
        ctl.on_fire(6 * 64, 10)
        ctl.on_fire(7 * 64, 11_000)         # triggers evaluation
        assert 5 not in ctl._hits
        assert 6 not in ctl._hits
        assert 7 in ctl._hits

    def test_deterministic(self):
        def history():
            _, ctl = self.make()
            for i in range(300):
                ctl.on_fire((i % 3) * 64, i * 7)
            return ctl.history
        assert history() == history()


class TestRotation:
    def make(self, rotation, rotate_interval=100):
        cfg = AdaptiveConfig(enabled=True, rotation=rotation,
                             rotate_interval=rotate_interval)
        pmu = make_pmu(period=50, adaptive=cfg)
        return pmu.controller

    def test_single_slot_always_delivers(self):
        ctl = self.make(("all",))
        for now in (0, 99, 100, 10**6):
            assert ctl.wants_sample(True, now)
            assert ctl.wants_sample(False, now)

    def test_schedule_cycles_through_slots(self):
        ctl = self.make(("all", "write", "read"))
        assert ctl.current_mode(0) == "all"
        assert ctl.current_mode(100) == "write"
        assert ctl.current_mode(250) == "read"
        assert ctl.current_mode(300) == "all"

    def test_write_slot_gates_reads(self):
        ctl = self.make(("write",))
        assert ctl.wants_sample(True, 0)
        assert not ctl.wants_sample(False, 0)

    def test_read_slot_gates_writes(self):
        ctl = self.make(("read",))
        assert not ctl.wants_sample(True, 0)
        assert ctl.wants_sample(False, 0)


class TestPMUPeriod:
    def test_set_period_floors_at_one(self):
        pmu = make_pmu()
        pmu.set_period(0)
        assert pmu.period == 1

    def test_set_period_counts_only_real_changes(self):
        pmu = make_pmu(period=100)
        pmu.set_period(100)
        assert pmu.period_changes == 0
        pmu.set_period(50)
        pmu.set_period(50)
        assert pmu.period_changes == 1

    def test_live_period_drives_next_fire(self):
        pmu = make_pmu(period=100)
        pmu.on_thread_start(1)
        pmu.set_period(3)
        # Drain the already-armed countdown (drawn at period 100)...
        fired = 0
        for _ in range(100):
            if pmu.on_access(1, 0, 0, True, 1, 4, 0):
                fired += 1
                break
        assert fired == 1
        # ...after which fires come every 3 instructions.
        costs = [pmu.on_access(1, 0, 0, True, 1, 4, 0) for _ in range(9)]
        assert sum(1 for c in costs if c) == 3

    def test_config_period_untouched_by_retune(self):
        pmu = make_pmu(period=100)
        pmu.set_period(7)
        assert pmu.config.period == 100


class TestRotationDelivery:
    def make(self):
        cfg = AdaptiveConfig(enabled=True, rotation=("write",),
                             rotate_interval=10**9,
                             evaluate_interval=10**9)
        pmu = make_pmu(period=2, adaptive=cfg, handler_cost=30, trap_cost=7)
        pmu.install_handler(lambda s: None)
        pmu.on_thread_start(1)
        return pmu

    def test_gated_fire_is_a_trap(self):
        pmu = self.make()
        # Reads only: every fire lands in the write slot and is skipped.
        for i in range(10):
            pmu.on_access(1, 0, 0, False, 1, 4, i)
        assert pmu.samples_fired == 5
        assert pmu.memory_samples == 0
        assert pmu.rotation_skipped == 5
        assert pmu.overhead_by_tid[1] == 2_500 + 5 * 7

    def test_matching_fire_delivers(self):
        pmu = self.make()
        for i in range(10):
            pmu.on_access(1, 0, 0, True, 1, 4, i)
        assert pmu.memory_samples == 5
        assert pmu.rotation_skipped == 0
        assert pmu.overhead_by_tid[1] == 2_500 + 5 * 30

    def test_conservation_with_rotation(self):
        # rotation_skipped fires must read as traps to the sanitizer's
        # overhead-conservation law.
        from repro.sim.machine import Machine
        from repro.sim.params import MachineConfig
        pmu = self.make()
        for i in range(50):
            pmu.on_access(1, 0, 0, bool(i % 2), 1, 4, i)
        Machine(MachineConfig(), check=True).sanitizer.check_pmu(pmu)


class TestEffectivePeriod:
    class _Thread:
        def __init__(self, instructions):
            self.instructions = instructions

    def make_profiler(self):
        from repro.core.profiler import CheetahProfiler
        return CheetahProfiler()

    def test_fixed_run_uses_configured_period(self):
        prof = self.make_profiler()
        pmu = make_pmu(period=128)
        pmu.samples_fired = 100
        pmu.memory_samples = 60
        threads = {1: self._Thread(10_000)}
        assert prof._effective_period(pmu, threads) == 128.0

    def test_retuned_run_uses_observed_rate(self):
        prof = self.make_profiler()
        pmu = make_pmu(period=128)
        pmu.set_period(64)
        pmu.samples_fired = 100
        pmu.memory_samples = 50
        threads = {1: self._Thread(8_000), 2: self._Thread(2_000)}
        # 10_000 instructions / 100 fires = 100 per fire; no rotation.
        assert prof._effective_period(pmu, threads) == pytest.approx(100.0)

    def test_rotation_scales_for_discarded_deliveries(self):
        prof = self.make_profiler()
        pmu = make_pmu(period=128)
        pmu.samples_fired = 100
        pmu.memory_samples = 25
        pmu.rotation_skipped = 25
        threads = {1: self._Thread(10_000)}
        # Of the memory fires only half were delivered: each delivered
        # sample stands for twice as many instructions.
        assert prof._effective_period(pmu, threads) == pytest.approx(200.0)

    def test_degenerate_counts_fall_back_to_config(self):
        prof = self.make_profiler()
        pmu = make_pmu(period=128)
        pmu.set_period(64)          # retuned, but no fires at all
        assert prof._effective_period(pmu, {}) == 128.0


class TestEndToEnd:
    def run_adaptive(self, check=False):
        from repro.core.profiler import CheetahConfig
        from repro.run import run_workload
        from repro.workloads.base import get_workload

        cls = get_workload("array_increment")
        pmu_config = PMUConfig(period=256,
                               adaptive=AdaptiveConfig(enabled=True))
        return run_workload(cls(num_threads=4, scale=0.5),
                            jitter_seed=11, with_cheetah=True,
                            pmu_config=pmu_config,
                            cheetah_config=CheetahConfig(
                                detector_mode="windowed"),
                            check=check)

    def test_adaptive_run_detects_and_retunes(self):
        outcome = self.run_adaptive()
        assert outcome.report.significant
        assert outcome.pmu.period_changes > 0
        assert outcome.pmu.controller.history
        assert outcome.pmu.controller.tightenings > 0

    def test_adaptive_run_survives_sanitizer(self):
        outcome = self.run_adaptive(check=True)
        assert outcome.report.significant

    def test_adaptive_runs_deterministic(self):
        first = self.run_adaptive()
        second = self.run_adaptive()
        assert first.runtime == second.runtime
        assert first.pmu.controller.history == second.pmu.controller.history

    def test_metrics_surface_period_changes(self):
        from repro.core.profiler import CheetahConfig
        from repro.obs import ObsConfig
        from repro.run import run_workload
        from repro.workloads.base import get_workload

        cls = get_workload("array_increment")
        outcome = run_workload(
            cls(num_threads=4, scale=0.5), jitter_seed=11,
            with_cheetah=True,
            pmu_config=PMUConfig(period=256,
                                 adaptive=AdaptiveConfig(enabled=True)),
            cheetah_config=CheetahConfig(detector_mode="windowed"),
            obs=ObsConfig(trace=False, metrics=True))
        counters = outcome.metrics["counters"]
        assert counters["pmu_period_changes_total"] > 0
        assert counters["pmu_period_changes_total"] == \
            outcome.pmu.period_changes
        gauges = outcome.metrics["gauges"]
        assert gauges["pmu_period_current"] == outcome.pmu.period
        assert "pmu_hot_lines" in gauges


class TestExperiment:
    def test_small_matrix_smoke(self):
        from repro.experiments import adaptive as exp

        policies = {
            "fixed-128": PMUConfig(period=128),
            "adaptive": PMUConfig(
                period=256, adaptive=AdaptiveConfig(enabled=True)),
        }
        result = exp.run(scale=1.0, jitter_seed=11,
                         workloads=[("array_increment", 4, 0.5),
                                    ("histogram", 4, 0.5)],
                         policies=policies)
        assert result.policies() == ["fixed-128", "adaptive"]
        assert result.truth["array_increment"] is True
        assert result.truth["histogram"] is False
        for policy in result.policies():
            name, overhead, recall, false_pos, samples, early = \
                result.summary(policy)
            assert overhead > 0
            assert recall == 1.0
            assert false_pos == 0
            assert samples > 0
        rendered = result.render()
        assert "fixed-128" in rendered and "adaptive" in rendered
        payload = result.to_dict()
        assert set(payload["policies"]) == {"fixed-128", "adaptive"}
        adaptive_cells = result.cells_for("adaptive")
        assert any(c.period_changes > 0 for c in adaptive_cells)
        assert all(c.findings > 0 for c in adaptive_cells
                   if result.truth[c.workload])
