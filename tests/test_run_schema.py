"""Versioned RunOutcome JSON schema: round-trip and version gating."""

import json

import pytest

from repro.errors import SchemaError
from repro.run import (
    SCHEMA_VERSION,
    RunOutcome,
    RunSummary,
    run_workload,
)
from repro.workloads.micro import ArrayIncrement


def _outcome(with_cheetah=False):
    return run_workload(ArrayIncrement(num_threads=2, scale=0.1),
                        jitter_seed=7, with_cheetah=with_cheetah)


class TestRoundTrip:
    def test_schema_version_stamped(self):
        data = _outcome().to_dict()
        assert data["schema_version"] == SCHEMA_VERSION

    def test_dict_is_json_clean(self):
        text = json.dumps(_outcome(with_cheetah=True).to_dict(),
                          sort_keys=True, allow_nan=False)
        assert json.loads(text)

    def test_round_trip_is_byte_stable(self):
        original = _outcome(with_cheetah=True)
        data = original.to_dict()
        rebuilt = RunOutcome.from_dict(data)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) \
            == json.dumps(data, sort_keys=True)

    def test_rehydrated_summary_matches_live_result(self):
        original = _outcome()
        rebuilt = RunOutcome.from_dict(original.to_dict())
        assert isinstance(rebuilt.result, RunSummary)
        assert rebuilt.runtime == original.runtime
        assert rebuilt.invalidations == original.invalidations
        assert rebuilt.result.total_accesses \
            == original.result.total_accesses
        assert rebuilt.from_cache

    def test_report_renders_identically(self):
        original = _outcome(with_cheetah=True)
        rebuilt = RunOutcome.from_dict(original.to_dict())
        assert rebuilt.report is not None
        assert rebuilt.report.render() == original.report.render()


class TestSchemaV2:
    """v2 additions: tenant and streaming_findings survive round-trip."""

    def test_v2_fields_present(self):
        data = _outcome().to_dict()
        assert data["tenant"] is None
        assert data["streaming_findings"] == []

    def test_tenant_round_trips(self):
        original = _outcome()
        original.tenant = "team-a"
        rebuilt = RunOutcome.from_dict(original.to_dict())
        assert rebuilt.tenant == "team-a"
        assert rebuilt.to_dict()["tenant"] == "team-a"

    def test_windowed_findings_round_trip(self):
        from repro.request import RunRequest
        original = RunRequest(workload="linear_regression", threads=4,
                              detector="windowed").execute()
        findings = original.streaming_findings
        assert findings, "windowed linear_regression should emit findings"
        rebuilt = RunOutcome.from_dict(original.to_dict())
        assert rebuilt.streaming_findings == findings
        # and they survive a second hop (cache rehydration of a
        # rehydrated payload)
        again = RunOutcome.from_dict(rebuilt.to_dict())
        assert again.streaming_findings == findings

    def test_v1_payload_rehydrates(self):
        """Stored v1 entries (no tenant / findings keys) still load."""
        data = _outcome().to_dict()
        data["schema_version"] = 1
        del data["tenant"]
        del data["streaming_findings"]
        rebuilt = RunOutcome.from_dict(data)
        assert rebuilt.tenant is None
        assert rebuilt.streaming_findings == []
        assert rebuilt.runtime > 0

    def test_bad_tenant_rejected(self):
        data = _outcome().to_dict()
        data["tenant"] = 42
        with pytest.raises(SchemaError, match="malformed"):
            RunOutcome.from_dict(data)

    def test_bad_findings_rejected(self):
        data = _outcome().to_dict()
        data["streaming_findings"] = "nope"
        with pytest.raises(SchemaError, match="malformed"):
            RunOutcome.from_dict(data)
        data["streaming_findings"] = ["not-a-mapping"]
        with pytest.raises(SchemaError, match="malformed"):
            RunOutcome.from_dict(data)


class TestVersionGating:
    def test_unknown_version_rejected(self):
        data = _outcome().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema"):
            RunOutcome.from_dict(data)

    def test_missing_version_rejected(self):
        data = _outcome().to_dict()
        del data["schema_version"]
        with pytest.raises(SchemaError):
            RunOutcome.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(SchemaError):
            RunOutcome.from_dict("not a dict")

    def test_malformed_payload_rejected(self):
        data = _outcome().to_dict()
        del data["result"]
        with pytest.raises(SchemaError):
            RunOutcome.from_dict(data)
