"""Versioned RunOutcome JSON schema: round-trip and version gating."""

import json

import pytest

from repro.errors import SchemaError
from repro.run import (
    SCHEMA_VERSION,
    RunOutcome,
    RunSummary,
    run_workload,
)
from repro.workloads.micro import ArrayIncrement


def _outcome(with_cheetah=False):
    return run_workload(ArrayIncrement(num_threads=2, scale=0.1),
                        jitter_seed=7, with_cheetah=with_cheetah)


class TestRoundTrip:
    def test_schema_version_stamped(self):
        data = _outcome().to_dict()
        assert data["schema_version"] == SCHEMA_VERSION

    def test_dict_is_json_clean(self):
        text = json.dumps(_outcome(with_cheetah=True).to_dict(),
                          sort_keys=True, allow_nan=False)
        assert json.loads(text)

    def test_round_trip_is_byte_stable(self):
        original = _outcome(with_cheetah=True)
        data = original.to_dict()
        rebuilt = RunOutcome.from_dict(data)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) \
            == json.dumps(data, sort_keys=True)

    def test_rehydrated_summary_matches_live_result(self):
        original = _outcome()
        rebuilt = RunOutcome.from_dict(original.to_dict())
        assert isinstance(rebuilt.result, RunSummary)
        assert rebuilt.runtime == original.runtime
        assert rebuilt.invalidations == original.invalidations
        assert rebuilt.result.total_accesses \
            == original.result.total_accesses
        assert rebuilt.from_cache

    def test_report_renders_identically(self):
        original = _outcome(with_cheetah=True)
        rebuilt = RunOutcome.from_dict(original.to_dict())
        assert rebuilt.report is not None
        assert rebuilt.report.render() == original.report.render()


class TestVersionGating:
    def test_unknown_version_rejected(self):
        data = _outcome().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema"):
            RunOutcome.from_dict(data)

    def test_missing_version_rejected(self):
        data = _outcome().to_dict()
        del data["schema_version"]
        with pytest.raises(SchemaError):
            RunOutcome.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(SchemaError):
            RunOutcome.from_dict("not a dict")

    def test_malformed_payload_rejected(self):
        data = _outcome().to_dict()
        del data["result"]
        with pytest.raises(SchemaError):
            RunOutcome.from_dict(data)
