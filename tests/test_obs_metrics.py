"""Tests for the metrics registry and the run-level conservation laws."""

import pytest

from repro.errors import ConfigError
from repro.obs import ObsConfig
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
)
from repro.pmu.sampler import PMUConfig
from repro.run import run_workload
from repro.workloads.micro import ArrayIncrement


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("hits_total")
        assert c.value() == 0
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_negative_increment_rejected(self):
        c = Counter("hits_total")
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_labelled_series_and_total(self):
        c = Counter("accesses_total", label="outcome")
        c.inc(3, "hit")
        c.inc(2, "miss")
        assert c.value("hit") == 3
        assert c.total() == 5

    def test_label_mismatch_rejected(self):
        c = Counter("accesses_total", label="outcome")
        with pytest.raises(ConfigError):
            c.inc(1)
        with pytest.raises(ConfigError):
            Counter("plain_total").inc(1, "hit")


class TestGauge:
    def test_set_overwrites_add_accumulates(self):
        g = Gauge("occupancy")
        g.set(7)
        g.set(3)
        assert g.value() == 3
        g.add(2)
        assert g.value() == 5


class TestHistogram:
    def test_buckets_must_be_strictly_increasing(self):
        with pytest.raises(ConfigError):
            Histogram("h", buckets=(1, 1, 2))
        with pytest.raises(ConfigError):
            Histogram("h", buckets=(4, 2))

    def test_cumulative_buckets_and_inf(self):
        h = Histogram("cost", buckets=(1, 10))
        for value in (0, 1, 5, 100):
            h.observe(value)
        assert h.bucket_counts() == [("1", 2), ("10", 3), ("+Inf", 4)]
        assert h.count == 4
        assert h.sum == 106

    def test_render_is_prometheus_shaped(self):
        h = Histogram("cost", help="cycles", buckets=(2,))
        h.observe(1)
        lines = h.render()
        assert "# TYPE cost histogram" in lines
        assert 'cost_bucket{le="2"} 1' in lines
        assert 'cost_bucket{le="+Inf"} 1' in lines
        assert "cost_count 1" in lines


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")
        with pytest.raises(ConfigError):
            reg.histogram("x")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", label="kind")
        with pytest.raises(ConfigError):
            reg.counter("x_total", label="other")

    def test_render_families_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc()
        reg.gauge("a_value").set(1)
        text = reg.render_prometheus()
        assert text.index("a_value") < text.index("b_total")
        assert text.endswith("\n")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total", label="kind").inc(2, "x")
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1,)).observe(0)
        snap = reg.snapshot()
        assert snap["counters"]["c_total"] == {"x": 2}
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["buckets"][-1] == ["+Inf", 1]


class TestAggregateSnapshots:
    def test_counters_and_gauges_sum_per_series(self):
        reg = MetricsRegistry()
        reg.counter("c_total", label="kind").inc(2, "x")
        reg.gauge("g").set(5)
        snap = reg.snapshot()
        agg = aggregate_snapshots([snap, snap, snap])
        assert agg["counters"]["c_total"] == {"x": 6}
        assert agg["gauges"]["g"] == 15

    def test_histograms_sum_bucket_wise(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1, 10)).observe(5)
        snap = reg.snapshot()
        agg = aggregate_snapshots([snap, snap])
        assert agg["histograms"]["h"]["count"] == 2
        assert agg["histograms"]["h"]["buckets"] == [
            ["1", 0], ["10", 2], ["+Inf", 2]]

    def test_mismatched_bucket_bounds_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1,)).observe(0)
        b = MetricsRegistry()
        b.histogram("h", buckets=(2,)).observe(0)
        with pytest.raises(ConfigError):
            aggregate_snapshots([a.snapshot(), b.snapshot()])


class TestRunConservation:
    """Cross-check the registry against the run's own ground truth.

    The profiled run executes under the coherence sanitizer, whose
    ``check_pmu`` enforces ``sum(overhead_by_tid) == setup*threads +
    handler*memory_samples + trap*other_fires`` on the engine side; the
    assertions below verify the metrics snapshot reports exactly the
    same decomposition.
    """

    @pytest.fixture(scope="class")
    def run(self):
        workload = ArrayIncrement(num_threads=4, scale=0.2)
        return run_workload(workload, with_cheetah=True, check=True,
                            obs=ObsConfig(trace=False))

    def test_access_counters_match_ground_truth(self, run):
        counters = run.metrics["counters"]
        by_outcome = counters["machine_accesses_total"]
        assert sum(by_outcome.values()) == run.result.total_accesses
        assert counters["sim_accesses_total"] == run.result.total_accesses

    def test_invalidations_match_directory(self, run):
        counters = run.metrics["counters"]
        directory = run.result.machine.directory
        assert (counters["coherence_invalidations_total"]
                == directory.total_invalidations())
        hist = run.metrics["histograms"]["coherence_invalidations_per_line"]
        assert hist["sum"] == directory.total_invalidations()
        assert hist["count"] == len(directory.lines_with_invalidations(1))

    def test_pmu_overhead_decomposition(self, run):
        cfg = PMUConfig()
        counters = run.metrics["counters"]
        gauges = run.metrics["gauges"]
        samples = counters["pmu_samples_total"]
        overhead = counters["pmu_overhead_cycles_total"]
        assert overhead["setup"] == (gauges["pmu_threads_armed"]
                                     * cfg.thread_setup_cost)
        assert overhead["handler"] == samples["memory"] * cfg.handler_cost
        assert overhead["trap"] == samples["trap"] * cfg.trap_cost
        # The live histogram saw every delivered memory sample.
        hist = run.metrics["histograms"]["pmu_handler_cost_cycles"]
        assert hist["count"] == samples["memory"]
        assert hist["sum"] == overhead["handler"]

    def test_phase_cycles_partition_runtime(self, run):
        phase = run.metrics["counters"]["phase_cycles_total"]
        assert phase["serial"] + phase["parallel"] == run.result.runtime

    def test_detector_counters_sane(self, run):
        counters = run.metrics["counters"]
        gauges = run.metrics["gauges"]
        det = counters["detector_samples_total"]
        assert det["seen"] >= det["recorded"] > 0
        assert counters["detector_promotions_total"] > 0
        assert (gauges["detector_detailed_lines"]
                <= gauges["detector_tracked_lines"])

    def test_observed_run_is_cycle_identical(self, run):
        bare = run_workload(ArrayIncrement(num_threads=4, scale=0.2),
                            with_cheetah=True)
        assert bare.runtime == run.runtime
