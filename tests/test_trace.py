"""Tests for trace recording, storage and offline replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detection import DetectorConfig, FalseSharingDetector
from repro.run import run_workload
from repro.heap.allocator import CheetahAllocator
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable
from repro.trace import (
    TraceRecord, TraceRecorder, downsample, load_trace,
    replay_into_detector, save_trace,
)
from repro.trace.storage import TraceFormatError
from repro.workloads.synthetic import SyntheticSharing


def record_run(workload, limit=None, jitter_seed=1):
    recorder = TraceRecorder(limit=limit)
    out = run_workload(workload, jitter_seed=jitter_seed,
                       observer=recorder)
    return out, recorder


class TestRecorder:
    def test_records_every_access_in_order(self):
        out, recorder = record_run(SyntheticSharing(scale=0.2))
        assert len(recorder) == out.result.total_accesses
        indices = [r.index for r in recorder]
        assert indices == sorted(indices)

    def test_zero_cost_recording_does_not_perturb(self):
        wl = SyntheticSharing(scale=0.2)
        plain = run_workload(SyntheticSharing(scale=0.2), jitter_seed=1)
        traced, _ = record_run(SyntheticSharing(scale=0.2))
        assert traced.runtime == plain.runtime

    def test_limit_truncates(self):
        out, recorder = record_run(SyntheticSharing(scale=0.2), limit=100)
        assert len(recorder) == 100
        assert recorder.truncated

    def test_costed_recorder_slows_run(self):
        wl = SyntheticSharing(scale=0.2)
        plain = run_workload(SyntheticSharing(scale=0.2), jitter_seed=1)
        recorder = TraceRecorder(cost_per_access=20)
        traced = run_workload(SyntheticSharing(scale=0.2), jitter_seed=1,
                              observer=recorder)
        assert traced.runtime > plain.runtime


class TestStorage:
    def test_roundtrip(self, tmp_path):
        out, recorder = record_run(SyntheticSharing(scale=0.15))
        path = tmp_path / "run.trace"
        written = save_trace(recorder, path)
        loaded = list(load_trace(path))
        assert written == len(loaded) == len(recorder)
        assert loaded == recorder.records

    def test_gzip_roundtrip(self, tmp_path):
        out, recorder = record_run(SyntheticSharing(scale=0.15))
        path = tmp_path / "run.trace.gz"
        save_trace(recorder, path)
        assert list(load_trace(path)) == recorder.records

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#repro-trace v1\n1 2 3\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_non_numeric_field_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#repro-trace v1\n1 2 3 zz W x 4\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))


class TestDownsample:
    def test_rate_approximate(self):
        records = [TraceRecord(i, 1, 1, 0x100, False, 3, 4)
                   for i in range(10_000)]
        kept = list(downsample(records, period=100))
        assert 70 <= len(kept) <= 130

    def test_period_one_keeps_everything(self):
        records = [TraceRecord(i, 1, 1, 0x100, False, 3, 4)
                   for i in range(50)]
        assert len(list(downsample(records, period=1, jitter=0.0))) == 50

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            list(downsample([], period=0))

    def test_deterministic_per_seed(self):
        records = [TraceRecord(i, 1, 1, 0x100, False, 3, 4)
                   for i in range(1000)]
        a = [r.index for r in downsample(records, 50, seed=3)]
        b = [r.index for r in downsample(records, 50, seed=3)]
        assert a == b


class TestOfflineReplay:
    def test_full_trace_replay_finds_instance(self):
        # Two-round, DARWIN-style: record online, analyse offline.
        wl = SyntheticSharing(pattern="false", scale=0.4)
        out, recorder = record_run(wl)
        detector = FalseSharingDetector(
            DetectorConfig(min_invalidations=4))
        replayed = replay_into_detector(recorder, detector,
                                        serial_tids={0})
        assert replayed == len(recorder)
        profiles = detector.build_objects(out.result.allocator,
                                          out.result.symbols)
        assert profiles
        assert profiles[0].classify(0.5).value == "false sharing"

    def test_downsampled_replay_matches_online_sampling_shape(self):
        wl = SyntheticSharing(pattern="false", scale=0.4)
        out, recorder = record_run(wl)
        detector = FalseSharingDetector(
            DetectorConfig(min_invalidations=2))
        replay_into_detector(downsample(recorder, period=32),
                             detector, serial_tids={0})
        profiles = detector.build_objects(out.result.allocator,
                                          out.result.symbols)
        assert profiles  # sparse sampling still sees the hot object

    def test_replay_respects_serial_gating(self):
        records = [TraceRecord(i, 0, 0, 0x1000, True, 5, 4)
                   for i in range(10)]
        detector = FalseSharingDetector()
        replay_into_detector(records, detector, serial_tids={0})
        detail = detector.detailed_line(0x1000 >> 6)
        assert detail is not None
        assert detail.accesses == 0  # all samples were serial-gated
