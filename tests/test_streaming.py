"""Tests for the windowed streaming detector: emission thresholds,
filters, window expiry, observability wiring, offline parity on the
ground-truth workloads, and the detector state-retention fixes."""

import pytest

from repro.core.detection import DetectorConfig, FalseSharingDetector
from repro.core.streaming import (
    StreamingConfig, StreamingDetector, StreamingFinding,
)
from repro.errors import ConfigError
from repro.heap.allocator import CheetahAllocator
from repro.obs import Observability, ObsConfig
from repro.obs.tracer import DETECTOR_TRACK
from repro.pmu.sample import MemorySample
from repro.symbols.table import SymbolTable


def sample(addr, tid, is_write, latency=10, timestamp=0):
    return MemorySample(tid=tid, core=tid, addr=addr, is_write=is_write,
                        latency=latency, size=4, timestamp=timestamp)


def make(window=1000, flush_interval=100, min_hits=6, min_writes=2,
         max_dominance=0.9, **kw):
    return StreamingDetector(
        DetectorConfig(),
        streaming=StreamingConfig(window=window,
                                  flush_interval=flush_interval,
                                  min_hits=min_hits, min_writes=min_writes,
                                  max_dominance=max_dominance, **kw))


def contended(det, n, base=0x100, start_ts=0, step=1):
    """Feed n alternating two-thread writes to disjoint words of one
    line, timestamps advancing by ``step``."""
    for i in range(n):
        tid = 1 + (i % 2)
        addr = base + 4 * (tid - 1)
        det.on_sample(sample(addr, tid, True, timestamp=start_ts + i * step),
                      True)


class TestConfig:
    def test_defaults_valid(self):
        StreamingConfig()

    @pytest.mark.parametrize("kw", [
        {"window": 0}, {"flush_interval": 0}, {"min_hits": 0},
        {"min_writes": 0}, {"min_active_threads": 0},
        {"max_dominance": 0.0}, {"max_dominance": 1.5},
        {"max_lines": 0}, {"max_findings": 0},
    ])
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigError):
            StreamingConfig(**kw)


class TestEmission:
    def test_emits_once_thresholds_cross(self):
        det = make()
        contended(det, 5)
        assert det.findings == []
        contended(det, 1, start_ts=5)
        assert len(det.findings) == 1
        finding = det.findings[0]
        assert isinstance(finding, StreamingFinding)
        assert finding.line == 0x100 >> 6
        assert finding.hits == 6
        assert finding.active_threads == 2
        assert finding.tids == (1, 2)

    def test_no_reemission_while_window_lives(self):
        det = make()
        contended(det, 40)
        assert len(det.findings) == 1

    def test_single_thread_never_emits(self):
        det = make()
        for i in range(50):
            det.on_sample(sample(0x100, 1, True, timestamp=i), True)
        assert det.findings == []

    def test_writer_dominance_filter(self):
        # Thread 1 does all the writes; thread 2 only reads. The busiest
        # writer owns 100% of sampled writes, so no emission.
        det = make()
        for i in range(40):
            det.on_sample(sample(0x100, 1, True, timestamp=i), True)
            det.on_sample(sample(0x104, 2, False, timestamp=i), True)
        assert det.findings == []

    def test_balanced_writers_pass_dominance(self):
        det = make()
        contended(det, 20)
        assert len(det.findings) == 1
        assert det.findings[0].dominance == pytest.approx(0.5)

    def test_serial_init_never_emits(self):
        # Main-thread initialisation: one writer, zero other threads.
        det = make()
        for i in range(30):
            det.on_sample(sample(0x100, 0, True, timestamp=i), False)
        assert det.findings == []

    def test_max_findings_suppresses(self):
        det = make(max_findings=1)
        contended(det, 10, base=0x100)
        contended(det, 10, base=0x1000, start_ts=20)
        assert len(det.findings) == 1
        assert det.findings_suppressed == 1


class TestWindowExpiry:
    def test_idle_window_expires_and_rearms(self):
        det = make(window=100, flush_interval=50)
        contended(det, 10)                       # emits once
        assert len(det.findings) == 1
        # A long-idle gap expires the entry (swept by a later sample's
        # flush), and fresh contention emits again.
        contended(det, 10, start_ts=10_000)
        assert len(det.findings) == 2
        assert det.windows_expired >= 1

    def test_force_flush_evaluates_survivors(self):
        det = make(flush_interval=10**9)         # no in-band flush
        contended(det, 6)
        # Emission happens per-update even without flushes...
        assert len(det.findings) == 1
        det2 = make(min_hits=7, flush_interval=10**9)
        contended(det2, 6)
        assert det2.findings == []
        det2.flush(100, force=True)              # final sweep: still short
        assert det2.findings == []

    def test_max_lines_evicts_oldest(self):
        det = make(max_lines=4)
        for i in range(10):
            det.on_sample(sample(0x1000 * i, 1, True, timestamp=i), True)
        assert len(det._window) <= 4
        assert det.windows_expired >= 6


class TestObservability:
    def run_contended(self, det):
        contended(det, 10)

    def test_finding_emits_metric_and_instant(self):
        obs = Observability(ObsConfig(trace=True, metrics=True))
        det = make()
        det.obs = obs
        self.run_contended(det)
        assert len(det.findings) == 1
        snap = obs.registry.snapshot()
        assert snap["counters"]["streaming_findings_total"] == 1
        events = [e for e in obs.tracer.events
                  if e.name == "streaming_finding"]
        assert len(events) == 1
        assert events[0].track == DETECTOR_TRACK
        assert events[0].args["line"] == 0x100 >> 6

    def test_offline_detector_emits_nothing(self):
        obs = Observability(ObsConfig(trace=True, metrics=True))
        det = FalseSharingDetector()
        det.obs = obs
        for i in range(20):
            det.on_sample(sample(0x100 + 4 * (i % 2), 1 + i % 2, True,
                                 timestamp=i), True)
        assert not [e for e in obs.tracer.events
                    if e.name == "streaming_finding"]


class TestVerdictParity:
    """Windowed and offline detectors must agree on every ground-truth
    workload, and the windowed one must speak before the run ends on
    every true positive."""

    @pytest.fixture(scope="class")
    def matrix(self):
        from repro.core.profiler import CheetahConfig
        from repro.predict.validate import VALIDATION_SET
        from repro.run import run_workload
        from repro.sim.params import MachineConfig
        from repro.workloads.base import get_workload

        rows = {}
        for name, threads, scale in VALIDATION_SET:
            cls = get_workload(name)
            runs = {}
            for mode in ("offline", "windowed"):
                runs[mode] = run_workload(
                    cls(num_threads=threads, scale=scale),
                    machine_config=MachineConfig(), jitter_seed=11,
                    with_cheetah=True,
                    cheetah_config=CheetahConfig(detector_mode=mode),
                    # Coherence/quantum events would blow the tracer cap
                    # on the big workloads and drop finding instants.
                    obs=ObsConfig(trace=True, metrics=True,
                                  trace_quanta=False,
                                  trace_coherence=False))
            rows[name] = runs
        return rows

    def test_verdicts_agree_everywhere(self, matrix):
        for name, runs in matrix.items():
            off = bool(runs["offline"].report.significant)
            win = bool(runs["windowed"].report.significant)
            assert off == win, name

    def test_reports_identical_objects(self, matrix):
        for name, runs in matrix.items():
            off = [(r.profile.key, r.profile.accesses,
                    r.profile.invalidations)
                   for r in runs["offline"].report.all_instances]
            win = [(r.profile.key, r.profile.accesses,
                    r.profile.invalidations)
                   for r in runs["windowed"].report.all_instances]
            assert off == win, name

    def test_runtimes_identical(self, matrix):
        # The windowed detector must not perturb the simulation.
        for name, runs in matrix.items():
            assert (runs["offline"].runtime
                    == runs["windowed"].runtime), name

    def test_true_positives_emit_early_findings(self, matrix):
        documented = {"synthetic", "array_increment", "linear_regression",
                      "streamcluster"}
        for name in documented:
            outcome = matrix[name]["windowed"]
            findings = outcome.profiler.detector.findings
            early = [f for f in findings if f.timestamp < outcome.runtime]
            assert early, name
            events = [e for e in outcome.obs.tracer.events
                      if e.name == "streaming_finding"]
            assert len(events) == len(findings), name

    def test_negatives_stay_quiet(self, matrix):
        for name in ("histogram", "word_count", "matrix_multiply",
                     "string_match"):
            outcome = matrix[name]["windowed"]
            assert outcome.profiler.detector.findings == [], name


class TestPendingBounds:
    """Satellite fixes: the pre-promotion sample buffer must stay
    bounded, and drops must be counted."""

    def test_many_cold_lines_stay_bounded(self):
        det = FalseSharingDetector()
        cap = det._PENDING_LINES_CAP
        for i in range(3 * cap):
            det.on_sample(sample(i * 64, 1, True, timestamp=i), True)
        assert len(det._pending) <= cap
        assert len(det._pending_seen) == len(det._pending)
        assert det.pending_evicted >= cap
        assert det.samples_dropped >= cap

    def test_idle_lines_expire_at_eviction(self):
        det = FalseSharingDetector()
        cap = det._PENDING_LINES_CAP
        window = det._PENDING_WINDOW
        for i in range(cap):
            det.on_sample(sample(i * 64, 1, True, timestamp=i), True)
        # The next cold line arrives far in the future: every buffered
        # line is stale, so expiry (not quarter-eviction) clears them.
        late = window + cap + 10
        det.on_sample(sample(cap * 64 * 2, 1, True, timestamp=late), True)
        assert len(det._pending) == 1
        assert det.pending_evicted == cap

    def test_per_line_cap_overflow_counted(self):
        det = FalseSharingDetector()
        for i in range(det._PENDING_CAP + 5):
            det.on_sample(sample(0x100, 1, False, timestamp=i), True)
        assert det.samples_dropped == 5

    def test_promotion_clears_pending_bookkeeping(self):
        det = FalseSharingDetector()
        for i in range(3):
            det.on_sample(sample(0x100, 1, True, timestamp=i), True)
        line = 0x100 >> 6
        assert det.detailed_line(line) is not None
        assert line not in det._pending
        assert line not in det._pending_seen

    def test_dropped_counter_surfaces_in_metrics(self):
        from repro.core.profiler import CheetahConfig
        from repro.run import run_workload
        from repro.workloads.base import get_workload

        cls = get_workload("array_increment")
        outcome = run_workload(cls(num_threads=4, scale=0.2),
                               with_cheetah=True,
                               cheetah_config=CheetahConfig(),
                               obs=ObsConfig(metrics=True))
        det_samples = outcome.metrics["counters"]["detector_samples_total"]
        assert "dropped" in det_samples
        assert det_samples["dropped"] == outcome.profiler.detector.samples_dropped
        text = outcome.obs.render_prometheus()
        assert 'detector_samples_total{stage="dropped"}' in text


class TestOwnerTieBreak:
    """Satellite fix: line-invalidation attribution ties break on
    (accesses, kind, identifier), not dict insertion order."""

    def _detector_with_tied_objects(self, order):
        alloc = CheetahAllocator()
        a = alloc.allocate(8, tid=0, callsite="a.c:1")
        b = alloc.allocate(8, tid=0, callsite="b.c:1")
        assert (a >> 6) == (b >> 6)
        det = FalseSharingDetector(DetectorConfig(min_invalidations=1))
        events = [(a, 1, True), (b, 2, True)] * 10
        if order == "reversed":
            # Same multiset of samples, opposite first-touch order —
            # the dict insertion order of the two profiles flips.
            events = [(b, 2, True), (a, 1, True)] * 10
        for i, (addr, tid, w) in enumerate(events):
            det.on_sample(sample(addr, tid, w, timestamp=i), True)
        return det, alloc

    def test_owner_stable_across_feeding_orders(self):
        owners = set()
        for order in ("forward", "reversed"):
            det, alloc = self._detector_with_tied_objects(order)
            profiles = det.build_objects(alloc, SymbolTable())
            selected = [p for p in profiles if p.invalidations]
            assert len(selected) == 1
            owners.add(selected[0].label)
        assert len(owners) == 1

    def test_tie_goes_to_largest_key(self):
        det, alloc = self._detector_with_tied_objects("forward")
        profiles = det.build_objects(alloc, SymbolTable())
        selected = [p for p in profiles if p.invalidations]
        # Equal accesses: the higher heap serial wins the explicit
        # (accesses, kind, identifier) tie-break.
        assert selected[0].label == "b.c:1"
