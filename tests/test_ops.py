"""Tests for thread operations."""

import pytest

from repro.sim.ops import (
    Fence, Free, Join, Load, LoopAccess, Malloc, Op, Spawn, Store, Work,
)


def test_load_store_defaults():
    load = Load(0x100)
    assert load.addr == 0x100 and load.size == 4
    store = Store(0x200, 8)
    assert store.addr == 0x200 and store.size == 8


def test_all_ops_are_ops():
    for op in (Load(0), Store(0), Work(1), LoopAccess(0, 4, 1), Spawn(str),
               Join(1), Malloc(8), Free(0), Fence()):
        assert isinstance(op, Op)


class TestLoopAccess:
    def test_total_accesses_read_write(self):
        op = LoopAccess(0, 4, 10, read=True, write=True)
        assert op.total_accesses == 20

    def test_total_accesses_read_only(self):
        op = LoopAccess(0, 4, 10, write=False)
        assert op.total_accesses == 10

    def test_total_accesses_with_repeat(self):
        op = LoopAccess(0, 4, 5, read=True, write=False, repeat=3)
        assert op.total_accesses == 15

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            LoopAccess(0, 4, -1)

    def test_negative_repeat_rejected(self):
        with pytest.raises(ValueError):
            LoopAccess(0, 4, 1, repeat=-2)

    def test_zero_count_is_legal_noop(self):
        assert LoopAccess(0, 4, 0).total_accesses == 0


def test_malloc_callsite_optional():
    assert Malloc(16).callsite is None
    assert Malloc(16, "file.py:3").callsite == "file.py:3"


def test_spawn_holds_fn_and_args():
    def fn(api):
        yield
    op = Spawn(fn, (1, 2), name="worker")
    assert op.fn is fn and op.args == (1, 2) and op.name == "worker"
