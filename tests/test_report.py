"""Tests for report rendering (Figure 5 format)."""

import pytest

from repro.core.assessment import Assessment
from repro.core.detection import ObjectProfile, SharingKind
from repro.core.report import ObjectReport, render_object, render_report


def make_report(kind=SharingKind.FALSE_SHARING, obj_kind="heap",
                label="linear_regression-pthread.c:139"):
    profile = ObjectProfile(
        key=(obj_kind, 1), kind=obj_kind, start=0x400004B8,
        end=0x400044B8, size=4000, label=label)
    profile.accesses = 1263
    profile.invalidations = 0x27F
    profile.writes = 501
    profile.total_latency = 102988
    profile.per_tid_accesses = {tid: 300 for tid in range(1, 17)}
    profile.per_tid_cycles = {tid: 6649 for tid in range(1, 17)}
    profile.word_summary = {
        0: {"tids": [1], "reads": 30, "writes": 34, "shared": False},
        2: {"tids": [1, 2], "reads": 20, "writes": 10, "shared": True},
    }
    assessment = Assessment(improvement=5.76172748, real_runtime=7738,
                            predicted_runtime=1343.0,
                            aver_nofs_cycles=3.0)
    return ObjectReport(profile=profile, assessment=assessment, kind=kind)


class TestRenderObject:
    def test_header_fields_match_figure5_format(self):
        text = render_object(make_report())
        assert "Detecting false sharing at the object: start 0x400004b8" in text
        assert "end 0x400044b8 (with size 4000)." in text
        assert "Accesses 1263" in text
        # The paper prints invalidations in hex ("27f").
        assert "invalidations 27f" in text
        assert "writes 501" in text
        assert "latency 102988 cycles." in text

    def test_latency_information_block(self):
        text = render_object(make_report())
        assert "totalThreads 16" in text
        # 16 x 300 = 4800 = 0x12c0, printed in hex like the paper's 12e1.
        assert "totalThreadsAccesses 12c0" in text
        assert "totalThreadsCycles 106384" in text
        assert "totalPossibleImprovementRate 576.172748%" in text
        assert "(realRuntime 7738 predictedRuntime 1343)." in text

    def test_heap_callsite_printed(self):
        text = render_object(make_report())
        assert "It is a heap object with the following callsite:" in text
        assert "linear_regression-pthread.c:139" in text

    def test_global_name_printed(self):
        report = make_report(obj_kind="global", label="thread_stats")
        text = render_object(report)
        assert "global variable 'thread_stats'" in text

    def test_word_level_map(self):
        text = render_object(make_report())
        assert "word    +0" in text
        assert "[shared word]" in text

    def test_words_can_be_suppressed(self):
        text = render_object(make_report(), include_words=False)
        assert "word " not in text

    def test_true_sharing_label(self):
        text = render_object(make_report(kind=SharingKind.TRUE_SHARING))
        assert text.startswith("Detecting true sharing")

    def test_str_dunder(self):
        assert "false sharing" in str(make_report())


class TestRenderReport:
    def test_empty_report(self):
        text = render_report([], runtime=12345)
        assert "No significant false sharing detected." in text
        assert "12345" in text

    def test_full_report_lists_instances(self):
        text = render_report([make_report(), make_report()], runtime=99,
                             fork_join_ok=True)
        assert text.count("--- instance") == 2
        assert "significant instances: 2" in text
        assert "fork-join model: verified" in text

    def test_non_fork_join_flagged(self):
        text = render_report([make_report()], runtime=1, fork_join_ok=False)
        assert "NOT fork-join" in text
