"""Golden determinism tests: same workload + seeds twice => identical
outputs.

The fused burst loop, the private-HIT fast path and the pin-table
pruning (all perf work) must not perturb a single access: the machine's
jitter stream is consumed once per access in global order, so *any*
reordering or skipped bookkeeping shows up here as a changed runtime,
invalidation count or report.
"""

from repro.run import run_workload
from repro.workloads.phoenix import Histogram, LinearRegression


def _native_fingerprint(workload):
    outcome = run_workload(workload, jitter_seed=11)
    result = outcome.result
    machine = result.machine
    return (
        result.runtime,
        result.steps,
        result.total_accesses,
        result.total_instructions,
        machine.total_accesses,
        machine.total_cycles,
        machine.prefetch_hits,
        machine.stall_cycles,
        machine.directory.total_invalidations(),
        tuple(sorted((tid, t.runtime, t.mem_cycles)
                     for tid, t in result.threads.items())),
    )


def _cheetah_fingerprint(workload):
    outcome = run_workload(workload, jitter_seed=11, with_cheetah=True)
    report = outcome.report
    return (
        outcome.result.runtime,
        outcome.result.steps,
        report.total_samples,
        tuple((r.profile.label, r.profile.accesses,
               r.assessment.improvement) for r in report.significant),
    )


class TestNativeDeterminism:
    def test_linear_regression_run_twice_identical(self):
        first = _native_fingerprint(
            LinearRegression(num_threads=8, scale=0.25))
        second = _native_fingerprint(
            LinearRegression(num_threads=8, scale=0.25))
        assert first == second

    def test_histogram_run_twice_identical(self):
        first = _native_fingerprint(Histogram(num_threads=4, scale=0.25))
        second = _native_fingerprint(Histogram(num_threads=4, scale=0.25))
        assert first == second

    def test_different_seed_changes_outputs(self):
        base = run_workload(LinearRegression(num_threads=4, scale=0.25),
                            jitter_seed=11)
        other = run_workload(LinearRegression(num_threads=4, scale=0.25),
                             jitter_seed=12)
        assert base.runtime != other.runtime


class TestCheetahDeterminism:
    def test_profiled_run_twice_identical(self):
        first = _cheetah_fingerprint(
            LinearRegression(num_threads=8, scale=0.25))
        second = _cheetah_fingerprint(
            LinearRegression(num_threads=8, scale=0.25))
        assert first == second


class TestFastPathMatchesGeneralPath:
    def test_trace_observer_disables_fast_path_same_invalidations(self):
        """The observed (general) loop and the fused loop must agree on
        coherence ground truth; timing differs only by the observer's
        instrumentation cost model, while the access sequence — and so
        the invalidation counts — is identical."""
        from repro.trace.recorder import TraceRecorder

        native = run_workload(LinearRegression(num_threads=4, scale=0.25),
                              jitter_seed=11)
        observed = run_workload(LinearRegression(num_threads=4, scale=0.25),
                                jitter_seed=11, observer=TraceRecorder())
        a = native.result.machine.directory
        b = observed.result.machine.directory
        assert a.total_invalidations() == b.total_invalidations()
        assert native.result.total_accesses == observed.result.total_accesses
