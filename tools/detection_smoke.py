#!/usr/bin/env python
"""CI smoke test for the concurrent workload families and trace replay.

Two checks, both against each workload's declared ``ground_truth``:

1. **Detection table** — runs the detection experiment over every
   concurrent family plus the micro/kmeans anchors and requires every
   row ``ok``: 100% recall on the significant false-sharing families
   and zero false positives on the true-sharing/no-sharing ones.
2. **Replay equivalence** — records one trace per concurrent family,
   saves it (gzipped), loads it back, and replays it through the
   machine + detector; the replay verdict must equal the live run's.

Run with and without ``REPRO_NO_NUMPY=1`` in CI.

Usage: PYTHONPATH=src python tools/detection_smoke.py
"""

import sys
import tempfile

from repro.experiments import detection
from repro.sim.params import MachineConfig
from repro.trace import load_trace, load_trace_meta, record_workload, \
    replay_outcome, save_trace
from repro.workloads import get_workload

#: One trace per family, at the fastest scale where the live (sampled)
#: verdict is stable — see tests/test_trace_replay.py.
REPLAY_SCALES = {
    "producer_consumer_ring": 0.4,
    "work_stealing_deque": 0.4,
    "cas_retry_queue": 0.4,
    "seqlock_read_mostly": 0.75,
    "numa_ping_pong": 0.3,
}


def fail(message):
    print(f"detection_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_detection_table():
    result = detection.run(scale=0.5)
    print(result.render())
    bad = [row.workload for row in result.rows if not row.ok]
    if bad:
        fail(f"detection table mismatches: {', '.join(bad)}")
    print(f"detection_smoke: detection table ok ({len(result.rows)} rows)")


def check_replay_equivalence(tmp):
    for name, scale in REPLAY_SCALES.items():
        cls = get_workload(name)
        machine = (MachineConfig(**cls.machine_defaults)
                   if cls.machine_defaults else None)
        recorder, meta = record_workload(cls(scale=scale),
                                         machine_config=machine)
        path = f"{tmp}/{name}.trace.gz"
        save_trace(recorder.records, path, meta=meta)
        outcome = replay_outcome(load_trace(path), load_trace_meta(path))
        md = outcome.result.metadata
        if md["verdict"] != meta["live_verdict"]:
            fail(f"{name}: replay verdict {md['verdict']!r} != "
                 f"live {meta['live_verdict']!r}")
        print(f"detection_smoke: {name}: replay == live "
              f"({md['verdict']}, {md['trace_records']:,} records)")


def main():
    check_detection_table()
    with tempfile.TemporaryDirectory(prefix="repro-detect-") as tmp:
        check_replay_equivalence(tmp)
    print("detection_smoke: PASS")


if __name__ == "__main__":
    main()
