#!/usr/bin/env python3
"""Prediction-accuracy entry point; see :mod:`repro.predict.validate`.

::

    PYTHONPATH=src python tools/predict_accuracy.py [--smoke] [--json]
        [--workloads a,b,c] [--seed N]

Equivalent to ``repro predict --validate``. For each ground-truth
workload the harness runs the same configuration in ``simulate`` and
``predict`` mode and reports per-workload invalidation/runtime error and
detection-verdict agreement; exits non-zero when the median
invalidation error exceeds the budget or any verdict disagrees.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.predict.validate import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
