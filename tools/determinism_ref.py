"""Dump a deterministic fingerprint of simulation outputs.

Used to verify that kernel optimisations leave every deterministic
output bit-identical: run it before and after a change and diff the
JSON. Not a test — the golden determinism test in
``tests/test_determinism.py`` covers the same property in CI.

::

    PYTHONPATH=src python tools/determinism_ref.py > /tmp/ref.json
"""

from __future__ import annotations

import json
import sys

from repro.experiments import scaling
from repro.run import run_workload
from repro.pmu.sampler import PMUConfig
from repro.workloads import get_workload


def fingerprint_run(name: str, *, threads: int, scale: float, seed: int,
                    with_cheetah: bool = False, fixed: bool = False) -> dict:
    cls = get_workload(name)
    outcome = run_workload(
        cls(num_threads=threads, scale=scale, fixed=fixed),
        jitter_seed=seed, with_cheetah=with_cheetah,
        pmu_config=PMUConfig() if with_cheetah else None)
    result = outcome.result
    machine = result.machine
    entry = {
        "runtime": result.runtime,
        "steps": result.steps,
        "total_accesses": result.total_accesses,
        "total_instructions": result.total_instructions,
        "machine_accesses": machine.total_accesses,
        "machine_cycles": machine.total_cycles,
        "prefetch_hits": machine.prefetch_hits,
        "stall_cycles": machine.stall_cycles,
        "invalidations": machine.directory.total_invalidations(),
        "thread_runtimes": {
            str(t.tid): t.runtime for t in result.threads.values()
        },
        "mem_cycles": {
            str(t.tid): t.mem_cycles for t in result.threads.values()
        },
    }
    if with_cheetah:
        report = outcome.report
        entry["report"] = {
            "significant": [
                {"label": r.profile.label,
                 "improvement": r.assessment.improvement,
                 "accesses": r.profile.accesses,
                 "invalidations": r.profile.invalidations}
                for r in report.significant
            ],
            "total_samples": report.total_samples,
            "serial_samples": report.serial_samples,
            "aver_nofs_cycles": report.aver_nofs_cycles,
        }
    return entry


def main() -> int:
    out = {}
    for name, threads in (("linear_regression", 8), ("histogram", 4),
                          ("streamcluster", 4)):
        for seed in (11, 22):
            key = f"{name}-t{threads}-s{seed}"
            out[key + "-native"] = fingerprint_run(
                name, threads=threads, scale=0.25, seed=seed)
            out[key + "-cheetah"] = fingerprint_run(
                name, threads=threads, scale=0.25, seed=seed,
                with_cheetah=True)
    out["linear_regression-fixed"] = fingerprint_run(
        "linear_regression", threads=8, scale=0.25, seed=11, fixed=True)
    sc = scaling.run(scale=0.1, thread_counts=(2, 4))
    out["scaling"] = [
        {"threads": r.threads, "unfixed": r.unfixed_runtime,
         "fixed": r.fixed_runtime} for r in sc.rows
    ]
    json.dump(out, sys.stdout, indent=1, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
