#!/usr/bin/env python3
"""Correctness-net entry point; see :mod:`repro.sim.check.validate`.

::

    PYTHONPATH=src python tools/validate.py [--smoke] [--seed N] [--iterations N]

Equivalent to ``repro validate``. Runs the sanitized-workload invariant
suite, the differential fuzzer, the serial-vs-parallel experiment
equivalence check and the seeded-mutation self-test; exits non-zero on
the first stage reporting a failure.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim.check.validate import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
