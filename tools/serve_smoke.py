#!/usr/bin/env python
"""CI smoke test for the serve daemon: real process, real HTTP.

Starts ``python -m repro serve`` on an ephemeral port as a subprocess,
submits a windowed-detector job over HTTP, polls it to completion,
asserts at least one NDJSON finding event and a non-empty ``/metrics``
exposition, then delivers SIGINT and checks the daemon drains and exits
0. Run with and without ``REPRO_NO_NUMPY=1`` in CI.

Usage: PYTHONPATH=src python tools/serve_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

TIMEOUT = 120.0


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_listening(proc):
    """Parse the bind address off the daemon's stderr banner."""
    deadline = time.monotonic() + TIMEOUT
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            fail(f"daemon exited before listening (rc={proc.poll()})")
        line = line.decode(errors="replace").strip()
        if "listening on" in line:
            return line.rsplit("on ", 1)[1]
    fail("timed out waiting for the listening banner")


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read())


def main():
    tmp = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", os.path.join(tmp, "cache"),
         "--sink-dir", os.path.join(tmp, "sink")],
        stderr=subprocess.PIPE, env=env)
    try:
        base = wait_for_listening(proc)
        print(f"serve_smoke: daemon at {base}")

        body = json.dumps({"request": {
            "workload": "linear_regression", "threads": 4,
            "detector": "windowed"}}).encode()
        request = urllib.request.Request(
            f"{base}/v1/jobs", data=body,
            headers={"Content-Type": "application/json",
                     "X-Repro-Tenant": "ci"})
        with urllib.request.urlopen(request, timeout=30) as resp:
            submitted = json.loads(resp.read())
            if resp.status != 202:
                fail(f"submit returned {resp.status}: {submitted}")
        job_id = submitted["id"]
        print(f"serve_smoke: submitted {job_id}")

        deadline = time.monotonic() + TIMEOUT
        job = None
        while time.monotonic() < deadline:
            job = get_json(f"{base}/v1/jobs/{job_id}")
            if job["status"] in ("done", "failed"):
                break
            time.sleep(0.1)
        if job is None or job["status"] != "done":
            fail(f"job did not complete: {job and job.get('status')} "
                 f"{job and job.get('error')}")
        if job["outcome"]["result"]["runtime"] <= 0:
            fail("outcome carries no runtime")
        print(f"serve_smoke: job done, "
              f"runtime={job['outcome']['result']['runtime']}")

        events = []
        with urllib.request.urlopen(f"{base}/v1/jobs/{job_id}/events",
                                    timeout=30) as resp:
            content_type = resp.headers["Content-Type"]
            if content_type != "application/x-ndjson":
                fail(f"events content-type is {content_type}")
            for line in resp:
                if line.strip():
                    events.append(json.loads(line))
        if not events:
            fail("no NDJSON finding events for a windowed run")
        if events[0].get("line", 0) <= 0:
            fail(f"malformed finding event: {events[0]}")
        print(f"serve_smoke: {len(events)} finding event(s)")

        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as resp:
            metrics = resp.read().decode()
        if "daemon_jobs_total" not in metrics:
            fail("metrics exposition is missing daemon counters")
        print(f"serve_smoke: /metrics ok ({len(metrics.splitlines())} lines)")

        findings = get_json(f"{base}/v1/findings?view=stats")
        if findings["stats"]["rows"] < 1:
            fail("findings sink is empty after a completed job")

        proc.send_signal(signal.SIGINT)
        rc = proc.wait(timeout=TIMEOUT)
        if rc != 0:
            fail(f"daemon exited {rc} after SIGINT")
        print("serve_smoke: clean shutdown, PASS")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
