#!/usr/bin/env python
"""Smoke-check the windowed detector against the offline detector.

For each smoke workload the script runs the Cheetah profiler twice —
``detector_mode="offline"`` and ``detector_mode="windowed"`` — on the
same machine/seed, then asserts the streaming contract:

- identical simulated runtimes (the windowed table must not perturb the
  run);
- identical end-of-run verdicts and reported objects (the windowed
  detector forwards every sample to the offline core);
- on every workload the reference table documents as a true positive,
  at least one incremental finding emitted strictly before run end.

It prints one deterministic fingerprint line per workload, so CI can
additionally diff the output of a numpy-accelerated run against a
``REPRO_NO_NUMPY=1`` pure-python run.

Usage::

    PYTHONPATH=src python tools/streaming_parity.py > with-numpy.txt
    REPRO_NO_NUMPY=1 PYTHONPATH=src python tools/streaming_parity.py > pure.txt
    diff with-numpy.txt pure.txt
"""

import sys

from repro.core.profiler import CheetahConfig
from repro.predict.validate import SMOKE_SET
from repro.run import run_workload
from repro.sim.params import MachineConfig
from repro.workloads import get_workload

#: Workloads the ground-truth table documents as false-sharing positives.
TRUE_POSITIVES = frozenset(
    ("synthetic", "array_increment", "linear_regression", "streamcluster"))


def main() -> int:
    failures = 0
    for name, threads, scale in SMOKE_SET:
        cls = get_workload(name)
        runs = {}
        for mode in ("offline", "windowed"):
            runs[mode] = run_workload(
                cls(num_threads=threads, scale=scale),
                machine_config=MachineConfig(), jitter_seed=11,
                with_cheetah=True,
                cheetah_config=CheetahConfig(detector_mode=mode))
        offline, windowed = runs["offline"], runs["windowed"]

        problems = []
        if offline.runtime != windowed.runtime:
            problems.append(
                f"runtime diverged: {offline.runtime} vs {windowed.runtime}")
        off_verdict = bool(offline.report.significant)
        win_verdict = bool(windowed.report.significant)
        if off_verdict != win_verdict:
            problems.append(
                f"verdict diverged: offline={off_verdict} "
                f"windowed={win_verdict}")
        off_objects = [(r.profile.key, r.profile.accesses)
                       for r in offline.report.all_instances]
        win_objects = [(r.profile.key, r.profile.accesses)
                       for r in windowed.report.all_instances]
        if off_objects != win_objects:
            problems.append("reported objects diverged")

        findings = windowed.profiler.detector.findings
        early = [f for f in findings if f.timestamp < windowed.runtime]
        if name in TRUE_POSITIVES and not early:
            problems.append("true positive produced no early finding")

        first = early[0].timestamp if early else "-"
        print(f"{name:<20} threads={threads} verdict={win_verdict} "
              f"findings={len(findings)} first_finding={first} "
              f"runtime={windowed.runtime}")
        for problem in problems:
            failures += 1
            print(f"  FAIL: {problem}", file=sys.stderr)
    if failures:
        print(f"{failures} streaming-parity failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
