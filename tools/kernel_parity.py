#!/usr/bin/env python
"""Print a deterministic fingerprint of vector-kernel runs.

CI runs this twice — once with numpy importable and once under
``REPRO_NO_NUMPY=1`` — and diffs the outputs: the numpy acceleration in
:mod:`repro.sim.kernel` is a pure speedup, so every simulated quantity
must be bit-identical with and without it.

Usage::

    PYTHONPATH=src python tools/kernel_parity.py > with-numpy.txt
    REPRO_NO_NUMPY=1 PYTHONPATH=src python tools/kernel_parity.py > pure.txt
    diff with-numpy.txt pure.txt
"""

import sys

from repro.run import run_workload
from repro.sim import kernel
from repro.sim.params import MachineConfig
from repro.workloads import get_workload

#: (workload, threads, scale) — mixes long private bursts (the batch
#: fast path) with multithreaded sharing (scalar escapes + quantum caps).
CASES = (
    ("histogram", 1, 0.25),
    ("histogram", 4, 0.25),
    ("synthetic", 1, 5.0),
    ("linear_regression", 4, 0.1),
)


def main() -> int:
    config = MachineConfig(kernel="vector")
    for name, threads, scale in CASES:
        cls = get_workload(name)
        outcome = run_workload(cls(num_threads=threads, scale=scale),
                               machine_config=config)
        result = outcome.result
        machine = result.machine
        if result.metadata.get("kernel") != "vector":
            print(f"{name}/t{threads}: expected the vector kernel, got "
                  f"{result.metadata.get('kernel')!r}", file=sys.stderr)
            return 1
        print(f"{name}/t{threads}/s{scale}"
              f" runtime={result.runtime}"
              f" steps={result.steps}"
              f" accesses={result.total_accesses}"
              f" instructions={result.total_instructions}"
              f" cycles={machine.total_cycles}"
              f" jitter_state={machine._jitter_state}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
