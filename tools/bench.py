#!/usr/bin/env python3
"""Perf-regression bench entry point; see :mod:`repro.bench`.

::

    PYTHONPATH=src python tools/bench.py [--repeats N] [--label L]

Equivalent to ``repro bench``. Appends an entry to ``BENCH_engine.json``
at the repo root and prints the speedup vs. the recorded baseline.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
