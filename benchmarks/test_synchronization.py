"""Benchmark: the synchronisation-waiting limitation and its fix.

Shape expectations: the paper's EQ 3 prediction degrades as barrier
waiting grows (its stated unmodelled effect), exploding past 100% error
once waits dominate; the extended (future-work) model keeps the
sync-dominated rows within a small multiple of reality.
"""

from conftest import report
from repro.experiments import synchronization


def test_synchronization_limitation(benchmark, once):
    result = once(benchmark, synchronization.run)
    report(result, benchmark,
           rows=[(r.imbalance, round(r.wait_fraction, 2),
                  round(r.real_improvement, 2),
                  round(r.predicted_improvement, 2),
                  round(r.extended_prediction, 2)) for r in result.rows])

    rows = {r.imbalance: r for r in result.rows}
    # Waiting grows with the injected imbalance.
    assert rows[8000].wait_fraction > rows[0].wait_fraction
    # The paper's model: fine-ish when balanced, broken when not.
    assert abs(rows[0].error_percent) < 60
    assert abs(rows[8000].error_percent) > 200
    # The future-work extension repairs the broken regime by an order
    # of magnitude.
    assert (abs(rows[8000].extended_error_percent)
            < abs(rows[8000].error_percent) / 5)
    assert abs(rows[2000].extended_error_percent) < 60
