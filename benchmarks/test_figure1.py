"""Benchmark: regenerate Figure 1(b) — the motivating microbenchmark.

Shape expectations (paper): reality diverges from the linear-speedup
expectation as threads increase, reaching roughly an order of magnitude
(~13x) at 8 threads.
"""

import pytest

from conftest import report

pytestmark = pytest.mark.slow
from repro.experiments import figure1


def test_figure1_microbenchmark(benchmark, once):
    result = once(benchmark, figure1.run)
    report(result, benchmark,
           worst_slowdown=result.worst_slowdown,
           slowdowns={r.threads: round(r.slowdown, 2)
                      for r in result.rows})

    slowdowns = {r.threads: r.slowdown for r in result.rows}
    assert slowdowns[1] == 1.0
    # Monotone divergence from the expectation.
    assert slowdowns[2] < slowdowns[4] < slowdowns[8]
    # Order of magnitude at 8 threads (paper: ~13x).
    assert 8.0 <= slowdowns[8] <= 25.0


def test_figure1_fix_restores_scaling(benchmark, once):
    """The padding fix (one line per element) restores near-linear
    scaling — the flip side of Figure 1 used throughout the paper."""
    from repro.run import run_workload
    from repro.workloads.micro import ArrayIncrement

    def measure():
        bad = run_workload(ArrayIncrement(num_threads=8),
                           jitter_seed=11).runtime
        good = run_workload(ArrayIncrement(num_threads=8, fixed=True),
                            jitter_seed=11).runtime
        single = run_workload(ArrayIncrement(num_threads=1),
                              jitter_seed=11).runtime
        return bad, good, single

    bad, good, single = once(benchmark, measure)
    benchmark.extra_info["fix_speedup"] = round(bad / good, 2)
    print(f"\nunfixed={bad} fixed={good} single={single} "
          f"fix speedup={bad / good:.1f}x "
          f"fixed parallel efficiency={single / 8 / good:.2f}")
    assert bad / good > 5.0
    # Fixed version within 2.5x of perfect linear speedup.
    assert good < 2.5 * single / 8
