"""Benchmark: regenerate Table 1 — precision of the assessment.

Shape expectations (paper): for linear_regression the improvement grows
with thread count into the multiple-x range; for streamcluster it stays
near 1.0x; and the predicted improvement tracks the real improvement
within ~10% on seed-averaged runs (individual rows are allowed slightly
more at simulation scale, where each run has ~10^3 samples instead of
the paper's ~10^6).
"""

import pytest

from conftest import report

pytestmark = pytest.mark.slow
from repro.experiments import table1


def test_table1_assessment_precision(benchmark, once):
    result = once(benchmark, table1.run)
    report(result, benchmark,
           worst_diff_percent=round(result.worst_diff_percent, 2),
           rows=[(r.application, r.threads, round(r.predicted, 3),
                  round(r.real, 3)) for r in result.rows])

    rows = {(r.application, r.threads): r for r in result.rows}
    # linear_regression: substantial, growing with threads.
    lr16 = rows[("linear_regression", 16)]
    lr2 = rows[("linear_regression", 2)]
    assert lr16.real > lr2.real > 1.5
    assert lr16.real > 4.0
    # streamcluster: small but real.
    for threads in (2, 4, 8, 16):
        sc = rows[("streamcluster", threads)]
        assert 1.0 < sc.real < 1.25
        assert abs(sc.predicted - sc.real) / sc.real < 0.10
    # Precision: every row within 15% seed-averaged (paper: 10% on
    # hardware-scale sample counts), and the table-wide mean within 10%.
    diffs = [abs(r.diff_percent) for r in result.rows]
    assert max(diffs) < 15.0
    assert sum(diffs) / len(diffs) < 10.0
