"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures. The
rendered table is printed to stdout (run pytest with ``-s`` to see it)
and key quantities are attached to ``benchmark.extra_info`` so they
appear in the JSON output of ``pytest-benchmark``.
"""

import pytest


def report(result, benchmark=None, **extra):
    """Print a rendered experiment and attach extras to the benchmark."""
    print()
    print(result.render())
    if benchmark is not None:
        for key, value in extra.items():
            benchmark.extra_info[key] = value


@pytest.fixture
def once():
    """Run the benchmarked callable exactly once (experiments are
    multi-second simulations; statistical repetition adds nothing since
    the simulator is deterministic given its seeds)."""
    def runner(benchmark, fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)
    return runner
