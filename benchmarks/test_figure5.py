"""Benchmark: regenerate Figure 5 — the linear_regression report.

Shape expectations (paper): Cheetah reports the heap object allocated at
linear_regression-pthread.c:139 as severe false sharing with a predicted
improvement in the multiple-x range (paper: 5.76x), including word-level
access breakdown.
"""

import pytest

from conftest import report

pytestmark = pytest.mark.slow
from repro.experiments import figure5


def test_figure5_report(benchmark, once):
    result = once(benchmark, figure5.run)
    report(result, benchmark,
           predicted_improvement=round(result.predicted_improvement, 3),
           callsite=result.callsite)

    assert result.detected
    assert result.callsite == "linear_regression-pthread.c:139"
    # Multiple-x predicted improvement (paper: 5.76x).
    assert 3.0 < result.predicted_improvement < 12.0
    # The report carries the Figure 5 fields.
    for field in ("Detecting false sharing at the object",
                  "invalidations", "totalThreads 16",
                  "totalPossibleImprovementRate",
                  "It is a heap object with the following callsite:"):
        assert field in result.report_text
