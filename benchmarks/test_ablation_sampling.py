"""Ablation: sampling period vs detection and overhead.

DESIGN.md calls out the sampling-rate choice: the paper claims sparse
sampling (1/64K instructions) still finds significant instances. This
sweep shows the trade-off on linear_regression: denser sampling costs
more runtime; sparser sampling eventually loses the instance.
"""

import math

from conftest import report
from repro.experiments.runner import format_table
from repro.run import run_workload
from repro.pmu.sampler import PMUConfig
from repro.workloads.phoenix import LinearRegression

PERIODS = (32, 128, 512, 4096)


class SweepResult:
    def __init__(self, rows):
        self.rows = rows

    def render(self):
        return ("Ablation — sampling period sweep (linear_regression, "
                "16 threads)\n" + format_table(
                    ["period", "overhead", "detected", "predicted"],
                    [[p, f"{o:.3f}", "yes" if d else "no",
                      f"{imp:.2f}x" if not math.isnan(imp) else "-"]
                     for p, o, d, imp in self.rows]))


def sweep():
    rows = []
    native = run_workload(LinearRegression(num_threads=16),
                          jitter_seed=11).runtime
    for period in PERIODS:
        pmu = PMUConfig(period=period)
        out = run_workload(LinearRegression(num_threads=16),
                           jitter_seed=11, pmu_config=pmu,
                           with_cheetah=True)
        detected = bool(out.report.significant)
        improvement = (out.report.best().improvement if detected
                       else float("nan"))
        rows.append((period, out.runtime / native, detected, improvement))
    return SweepResult(rows)


def test_sampling_period_ablation(benchmark, once):
    result = once(benchmark, sweep)
    report(result, benchmark,
           rows=[(p, round(o, 3), d) for p, o, d, _ in result.rows])

    overheads = [o for _, o, _, _ in result.rows]
    # Denser sampling costs more (allowing contention noise at the
    # extremes, the trend must hold between the densest and sparsest).
    assert overheads[0] > overheads[-1]
    # The calibrated default (128) detects the instance.
    detected = {p: d for p, _, d, _ in result.rows}
    predicted = {p: imp for p, _, _, imp in result.rows}
    assert detected[32] and detected[128]
    # Extremely sparse sampling degrades the result: either the instance
    # is lost outright, or the assessment collapses to a fraction of the
    # well-sampled prediction — the reason the period cannot be raised
    # arbitrarily.
    assert (not detected[4096]
            or predicted[4096] < 0.5 * predicted[128])
