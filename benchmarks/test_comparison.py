"""Benchmark: regenerate the Section 4.2.3 state-of-the-art comparison.

Shape expectations (paper): Predator detects every instance (including
the Figure 7 trio) at roughly 6x overhead; Cheetah detects the two
significant instances at a few percent overhead.
"""

import pytest

from conftest import report

pytestmark = pytest.mark.slow
from repro.experiments import comparison


def test_comparison_with_predator(benchmark, once):
    result = once(benchmark, comparison.run)
    report(result, benchmark,
           rows=[(r.name, r.cheetah_detected, round(r.cheetah_overhead, 3),
                  r.predator_detected, round(r.predator_overhead, 2))
                 for r in result.rows])

    by_name = {r.name: r for r in result.rows}
    # Cheetah finds the significant instances...
    assert by_name["linear_regression"].cheetah_detected
    # ...and misses the negligible trio (by design).
    for name in ("histogram", "reverse_index", "word_count"):
        assert not by_name[name].cheetah_detected
        # Predator's full instrumentation finds them.
        assert by_name[name].predator_detected
        # At a large overhead multiple (paper ~6x).
        assert by_name[name].predator_overhead > 3.0
        assert by_name[name].cheetah_overhead < 1.3
    # Predator also sees the significant ones, of course.
    assert by_name["linear_regression"].predator_detected
    assert by_name["streamcluster"].predator_detected
    # Sheriff: write-write instances are visible at a modest overhead,
    # far below Predator's.
    assert by_name["linear_regression"].sheriff_detected
    for row in result.rows:
        assert row.sheriff_overhead < row.predator_overhead
