"""Ablation: the two-entry table vs the ownership bitmap (Section 2.3).

Cheetah replaces Zhao et al.'s per-thread ownership bits with a bounded
two-entry table. This ablation replays identical sampled access streams
through both and compares (a) which lines each flags as heavily
invalidated and (b) the memory the bitmap would need.
"""

from conftest import report
from repro.baselines.ownership import OwnershipTracker
from repro.core.cacheline import TwoEntryTable
from repro.experiments.runner import format_table
from repro.run import run_workload
from repro.pmu.sampler import PMU, PMUConfig
from repro.workloads.phoenix import LinearRegression


class AblationResult:
    def __init__(self, table_lines, owner_lines, agree, bits, entries):
        self.table_lines = table_lines
        self.owner_lines = owner_lines
        self.agreement = agree
        self.bitmap_bits = bits
        self.table_entries = entries
        self.rows = [(len(table_lines), len(owner_lines), agree, bits,
                      entries)]

    def render(self):
        return ("Ablation — two-entry table vs ownership bitmap\n"
                + format_table(
                    ["hot lines (table)", "hot lines (bitmap)",
                     "verdict agreement", "bitmap bits",
                     "table entries (<=2/line)"],
                    [[len(self.table_lines), len(self.owner_lines),
                      f"{self.agreement:.0%}", self.bitmap_bits,
                      self.table_entries]]))


def compare(num_threads=16, min_invalidations=8):
    tables = {}
    ownership = OwnershipTracker()
    table_inval = {}

    def handler(sample):
        line = sample.addr >> 6
        table = tables.setdefault(line, TwoEntryTable())
        if sample.is_write:
            if table.record_write(sample.tid):
                table_inval[line] = table_inval.get(line, 0) + 1
        else:
            table.record_read(sample.tid)
        ownership.record(line, sample.tid, sample.is_write)

    wl = LinearRegression(num_threads=num_threads)
    from repro.heap.allocator import CheetahAllocator
    from repro.sim.engine import Engine
    from repro.sim.machine import Machine
    from repro.sim.params import MachineConfig
    from repro.symbols.table import SymbolTable
    symbols = SymbolTable()
    wl.setup(symbols)
    config = MachineConfig()
    pmu = PMU(PMUConfig(), handler=handler)
    engine = Engine(config=config, machine=Machine(config, jitter_seed=11),
                    symbols=symbols, pmu=pmu,
                    allocator=CheetahAllocator(line_size=64))
    engine.run(wl.main)

    hot_table = {line for line, c in table_inval.items()
                 if c >= min_invalidations}
    hot_owner = {line for line, c
                 in ownership.lines_with_invalidations(
                     min_invalidations).items()}
    union = hot_table | hot_owner
    agree = (len(hot_table & hot_owner) / len(union)) if union else 1.0
    return AblationResult(hot_table, hot_owner, agree,
                          ownership.bits_used(),
                          sum(len(t) for t in tables.values()))


def test_two_entry_table_ablation(benchmark, once):
    result = once(benchmark, compare)
    report(result, benchmark, agreement=result.agreement,
           bitmap_bits=result.bitmap_bits,
           table_entries=result.table_entries)

    # Same hot-line verdicts (allowing one borderline line of slack).
    assert result.agreement >= 0.7
    assert result.table_lines  # the instance is visible to both
    # Memory economics: the bitmap needs a bit per thread per line; the
    # table stores at most two entries per line regardless of threads.
    lines_touched = result.bitmap_bits // 17  # 17 tids (main + 16)
    assert result.table_entries <= 2 * lines_touched
