"""Benchmark: regenerate Figure 7 — negligible-impact false sharing.

Shape expectations (paper): fixing the false sharing in histogram,
reverse_index and word_count changes runtime by well under a percent
(<0.2% on the paper's multi-second runs; the fraction shrinks further
with scale), and Cheetah deliberately reports none of them.
"""

import pytest

from conftest import report

pytestmark = pytest.mark.slow
from repro.experiments import figure7


def test_figure7_negligible_misses(benchmark, once):
    result = once(benchmark, figure7.run)
    report(result, benchmark,
           worst_impact_percent=round(result.worst_impact_percent, 3),
           impacts={r.name: round(r.impact_percent, 3)
                    for r in result.rows})

    assert len(result.rows) == 3
    # Fixing changes runtime by under 1.5% at simulation scale (the
    # paper's 0.2% corresponds to runs ~10^4x longer; impact scales down
    # with run length since the update counts are fixed).
    assert result.worst_impact_percent < 1.5
    # Cheetah reports none of them — the point of the figure.
    assert not any(r.cheetah_reported for r in result.rows)
