"""Ablation: Hoard-style per-thread heap vs a shared bump allocator.

Section 2.2's design choice: per-thread superblocks mean "two objects in
the same cache line will never be allocated to two different threads",
eliminating inter-object false sharing by construction (at the price of
not being able to observe default-allocator-induced problems).
"""

from conftest import report
from repro.experiments.runner import format_table
from repro.heap.allocator import CheetahAllocator
from repro.heap.bump import BumpAllocator
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable


def program(api):
    """Eight threads each allocate a small object and hammer it —
    the classic inter-object false sharing pattern."""
    def worker(api):
        mine = yield from api.malloc(8, callsite="worker.c:12")
        yield from api.loop(mine, 0, 1, read=True, write=True, work=3,
                            repeat=1500)
    tids = []
    for _ in range(8):
        tids.append((yield from api.spawn(worker)))
    yield from api.join_all(tids)


class AblationResult:
    def __init__(self, rows):
        self.rows = rows

    def render(self):
        return ("Ablation — allocator design (inter-object false "
                "sharing)\n" + format_table(
                    ["allocator", "runtime", "invalidations"],
                    [[n, rt, inv] for n, rt, inv in self.rows]))


def run_both():
    rows = []
    for name, allocator in (
            ("bump (default-allocator analogue)", BumpAllocator(line_size=64)),
            ("per-thread (Cheetah/Hoard)", CheetahAllocator(line_size=64))):
        config = MachineConfig()
        engine = Engine(config=config,
                        machine=Machine(config, jitter_seed=11),
                        symbols=SymbolTable(), allocator=allocator)
        result = engine.run(program)
        rows.append((name, result.runtime,
                     result.machine.directory.total_invalidations()))
    return AblationResult(rows)


def test_allocator_ablation(benchmark, once):
    result = once(benchmark, run_both)
    report(result, benchmark,
           rows=[(n, rt, inv) for n, rt, inv in result.rows])

    (bump_name, bump_rt, bump_inv), (hoard_name, hoard_rt, hoard_inv) = \
        result.rows
    # The bump allocator creates heavy inter-object false sharing...
    assert bump_inv > 1000
    # ...which the per-thread heap eliminates entirely.
    assert hoard_inv == 0
    assert bump_rt > 2 * hoard_rt
