"""Benchmark: regenerate Figure 4 — Cheetah's runtime overhead.

Shape expectations (paper): ~7% average overhead across the 17
Phoenix+PARSEC applications; every application except the thread-heavy
kmeans (224 threads) and x264 (1024 threads) stays under ~12%; those two
exceed 20% because of per-thread PMU setup.
"""

import statistics

import pytest

from conftest import report

pytestmark = pytest.mark.slow
from repro.experiments import figure4


def test_figure4_overhead(benchmark, once):
    result = once(benchmark, figure4.run)
    report(result, benchmark,
           average=round(result.average, 4),
           average_excl_thread_heavy=round(
               result.average_excluding_thread_heavy, 4),
           per_app={r.name: round(r.normalized_runtime, 3)
                    for r in result.rows})

    assert len(result.rows) == 17
    # Low average overhead (paper: ~1.07).
    assert result.average < 1.15
    assert result.average_excluding_thread_heavy < 1.12
    # Thread-heavy outliers are the worst, as in the paper.
    kmeans = result.row("kmeans").normalized_runtime
    x264 = result.row("x264").normalized_runtime
    assert kmeans > result.average_excluding_thread_heavy
    assert x264 > result.average_excluding_thread_heavy
    assert max(kmeans, x264) > 1.15
    # No application pays anywhere near instrumentation-level overhead.
    assert all(r.normalized_runtime < 1.5 for r in result.rows)
