"""Benchmark: thread-scaling of false sharing damage (intro claim).

Shape expectation: the slowdown caused by linear_regression's false
sharing grows with thread count and saturates once every line of the
shared object is contended — "adding more cores ... will further
degrade the performance".
"""

import pytest

from conftest import report

pytestmark = pytest.mark.slow
from repro.experiments import scaling


def test_thread_scaling(benchmark, once):
    result = once(benchmark, scaling.run)
    report(result, benchmark,
           damages={r.threads: round(r.damage, 2) for r in result.rows})

    damages = {r.threads: r.damage for r in result.rows}
    # Monotone-ish growth into saturation.
    assert damages[2] < damages[8]
    assert damages[8] > 4.0
    # Saturation: past 8 threads the damage stays in the same band
    # rather than exploding (every line is already contended).
    high = [damages[t] for t in (16, 24, 32)]
    assert max(high) < 2.0 * damages[8]
    assert min(high) > 0.7 * damages[8]
