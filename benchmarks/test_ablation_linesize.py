"""Ablation/extension: cache-line-size sensitivity (Section 4.2.2).

The streamcluster bug only exists because the code's padding assumes a
32-byte cache line. Sweep the machine's line size and verify the
dependence, plus Predator's predictive (virtual-line) detection.
"""

from conftest import report
from repro.experiments import linesize


def test_line_size_sensitivity(benchmark, once):
    result = once(benchmark, linesize.run)
    report(result, benchmark,
           rows=[(r.line_size, r.slot_invalidations,
                  round(r.matched_fix_improvement, 3),
                  round(r.padding64_improvement, 3))
                 for r in result.rows],
           predictive_128=result.predictive_detects_128)

    by_size = {r.line_size: r for r in result.rows}
    # On a 32B-line machine the padding is correct: no bug.
    assert by_size[32].slot_invalidations < 20
    assert abs(by_size[32].matched_fix_improvement - 1.0) < 0.02
    # The bug appears at 64B and worsens at 128B.
    assert by_size[64].slot_invalidations > 300
    assert by_size[128].slot_invalidations > by_size[64].slot_invalidations
    assert (by_size[128].matched_fix_improvement
            > by_size[64].matched_fix_improvement)
    # The 64-byte padding stops working on a 128-byte-line machine —
    # padding is only a fix relative to the actual line size.
    assert (by_size[128].padding64_improvement
            < by_size[128].matched_fix_improvement)
    # Predictive detection from the 64B trace.
    assert result.predictive_detects_128


def test_assumption_studies(benchmark, once):
    """Section 2's assumptions: quantify the over-reporting they cause."""
    from repro.experiments import assumptions

    def both():
        return (assumptions.run_oversubscription(),
                assumptions.run_finite_cache())

    oversub, finite = once(benchmark, both)
    print()
    print(oversub.render())
    print()
    print(finite.render())

    # Assumption 1: all-on-one-core kills real invalidations; Cheetah's
    # count barely moves.
    truths = [r.ground_truth_invalidations for r in oversub.rows]
    counts = [r.cheetah_sampled_invalidations for r in oversub.rows]
    assert truths[-1] == 0 and counts[-1] > 0
    # Assumption 2: tiny caches remove most real invalidations; Cheetah
    # over-reports by >1.5x.
    baseline, worst = finite.rows[0], finite.rows[-1]
    assert worst.overreport_ratio(baseline) > 1.5
