"""Ablation: the AverCycles_nofs estimator (Section 3.1).

The paper approximates the no-false-sharing access latency with the
serial-phase average. At simulation scale the plain mean is fragile (a
single coherence-latency sample among tens skews it several-fold), so
the implementation defaults to the median. This ablation quantifies the
prediction error under each estimator and under the learned-default
fallback.
"""

import math

from conftest import report
from repro.core.profiler import CheetahConfig
from repro.core.assessment import AssessmentConfig
from repro.experiments.runner import (
    format_table, measure_predicted_improvement, measure_real_improvement,
)
from repro.workloads.phoenix import LinearRegression

ESTIMATORS = ("median", "trimmed", "mean")


class AblationResult:
    def __init__(self, real, rows):
        self.real = real
        self.rows = rows

    def render(self):
        return ("Ablation — AverCycles_nofs estimator "
                f"(linear_regression, 16 threads; real={self.real:.2f}x)\n"
                + format_table(
                    ["estimator", "predicted", "error"],
                    [[name, f"{pred:.2f}x", f"{err:+.1f}%"]
                     for name, pred, err in self.rows]))


def sweep():
    real = measure_real_improvement(LinearRegression, num_threads=16,
                                    seeds=(11, 22))
    rows = []
    for estimator in ESTIMATORS:
        cfg = CheetahConfig(assessment=AssessmentConfig(
            serial_estimator=estimator))
        pred = measure_predicted_improvement(
            LinearRegression, num_threads=16, seeds=(11, 22),
            cheetah_config=cfg)
        rows.append((estimator, pred, (pred - real) / real * 100.0))
    return AblationResult(real, rows)


def test_serial_estimator_ablation(benchmark, once):
    result = once(benchmark, sweep)
    report(result, benchmark,
           rows=[(n, round(p, 3)) for n, p, _ in result.rows])

    errors = {name: abs(err) for name, _, err in result.rows}
    # The robust default stays close to reality.
    assert errors["median"] < 15.0
    # The robust estimators never do worse than the raw mean by much;
    # typically the mean underpredicts when a stray coherence sample
    # inflates the serial average.
    assert errors["median"] <= errors["mean"] + 5.0
